package workload

import (
	"fmt"
	"sort"

	"twochains/internal/sim"
)

// Topology is the read-only deployment view a Traffic generator plans
// against: how many nodes there are and where the fabric places them.
type Topology struct {
	Nodes  int
	Shards int
	// ShardOf reports the fabric shard a node lives in (topology-aware
	// generators can keep traffic inside or across leaf domains).
	ShardOf func(node int) int
}

// Traffic generates one phase's deterministic burst plan. Generate must
// draw all randomness from the Planner's RNG and emit bursts in a
// deterministic order: the plan must be a pure function of (topology,
// scenario, RNG state). Every implementation registered by name gets
// the determinism property test in traffic_test.go for free.
type Traffic interface {
	Generate(p *Planner) error
}

// TrafficFunc adapts a plain generator function to Traffic.
type TrafficFunc func(p *Planner) error

// Generate implements Traffic.
func (f TrafficFunc) Generate(p *Planner) error { return f(p) }

var trafficRegistry = map[string]func() Traffic{}

// RegisterTraffic adds a traffic shape under a scenario-selectable
// name. It panics on duplicates or missing pieces — registration
// happens at init time, where a panic is a build error.
func RegisterTraffic(name string, factory func() Traffic) {
	if name == "" || factory == nil {
		panic("workload: RegisterTraffic needs a name and a factory")
	}
	if _, dup := trafficRegistry[name]; dup {
		panic("workload: RegisterTraffic: duplicate traffic " + name)
	}
	trafficRegistry[name] = factory
}

// TrafficNames lists every registered traffic shape in sorted order.
func TrafficNames() []string {
	out := make([]string, 0, len(trafficRegistry))
	for n := range trafficRegistry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// newTraffic instantiates a registered shape.
func newTraffic(name string) (Traffic, bool) {
	f, ok := trafficRegistry[name]
	if !ok {
		return nil, false
	}
	return f(), true
}

// Planner is the surface a Traffic generator emits through: the
// topology, the phase parameters, the scenario's deterministic RNG, and
// Emit. It accumulates the phase plan.
type Planner struct {
	topo Topology
	sc   *Scenario
	spec *phaseSpec
	rng  *sim.RNG
	pp   *phasePlan
	err  error
}

// Topology returns the deployment view.
func (p *Planner) Topology() Topology { return p.topo }

// Nodes returns the node count.
func (p *Planner) Nodes() int { return p.topo.Nodes }

// Rounds returns the phase's round parameter — the conventional "how
// many times around" knob; generators are free to interpret it.
func (p *Planner) Rounds() int { return p.spec.rounds }

// Burst returns the messages per emitted burst.
func (p *Planner) Burst() int { return p.spec.burst }

// Scenario returns the scenario being planned (read-only by
// convention).
func (p *Planner) Scenario() *Scenario { return p.sc }

// RNG is the deterministic random stream. All generator randomness must
// come from it, in emission order, or equal seeds stop replaying.
func (p *Planner) RNG() *sim.RNG { return p.rng }

// Emit plans one burst from src to dst: an element drawn from the
// phase mix and Burst() argument words drawn from the RNG, exactly one
// weighted-choice draw plus one (or two, with Arg1Random) word draws
// per message.
func (p *Planner) Emit(src, dst int) {
	if p.err == nil {
		if src < 0 || src >= p.topo.Nodes {
			p.err = &ScenarioError{Field: p.spec.at("Traffic"), Reason: fmt.Sprintf("emit from node %d of %d", src, p.topo.Nodes)}
		} else if dst < 0 || dst >= p.topo.Nodes {
			p.err = &ScenarioError{Field: p.spec.at("Traffic"), Reason: fmt.Sprintf("emit to node %d of %d", dst, p.topo.Nodes)}
		}
	}
	if p.err != nil {
		return
	}
	m := p.pickMix()
	args := p.mkArgs()
	p.pp.bursts[src] = append(p.pp.bursts[src], burst{dst: dst, mix: m, args: args, local: m.Local})
	p.pp.sent[dst] += p.spec.burst
	p.pp.total += p.spec.burst
}

// pickMix draws one weighted element choice.
func (p *Planner) pickMix() ElementMix {
	w := p.rng.Intn(p.spec.wsum)
	for _, m := range p.spec.mix {
		w -= m.Weight
		if w < 0 {
			return m
		}
	}
	return p.spec.mix[len(p.spec.mix)-1]
}

// mkArgs draws one burst's argument words.
func (p *Planner) mkArgs() [][2]uint64 {
	args := make([][2]uint64, p.spec.burst)
	for i := range args {
		args[i] = [2]uint64{p.rng.Uint64()%30000 + 1, 0}
		if p.spec.arg1Random {
			args[i][1] = p.rng.Uint64()%30000 + 1
		}
	}
	return args
}

// SetHotNode records the phase's skew target for Result.HotNode.
func (p *Planner) SetHotNode(node int) {
	if p.err == nil && (node < 0 || node >= p.topo.Nodes) {
		p.err = &ScenarioError{Field: p.spec.at("Traffic"), Reason: fmt.Sprintf("hot node %d of %d", node, p.topo.Nodes)}
		return
	}
	p.pp.hotNode = node
}

// SwapAtHalf plans the mid-phase remote-linking dynamic update: once
// node has executed half the messages this phase plans for it, the RIED
// elements of the named app are re-installed on it (replacing name
// bindings) and every channel into it re-runs the namespace exchange —
// while traffic is still in flight. In-flight Func handles re-bind on
// their next call.
func (p *Planner) SwapAtHalf(node int, app string) {
	if p.err == nil && (node < 0 || node >= p.topo.Nodes) {
		p.err = &ScenarioError{Field: p.spec.at("Traffic"), Reason: fmt.Sprintf("swap node %d of %d", node, p.topo.Nodes)}
		return
	}
	p.pp.swapNode, p.pp.swapApp = node, app
}

// The built-in shapes. Fanout/AllToAll/Hotspot are the paper's three
// mesh patterns (their plans — and therefore digests and simulated
// times — are bit-identical to the pre-registry implementation); Ring
// is the minimal neighbour exchange, mostly useful as a template for
// new shapes.
func init() {
	RegisterTraffic(string(Fanout), func() Traffic { return TrafficFunc(genFanout) })
	RegisterTraffic(string(AllToAll), func() Traffic { return TrafficFunc(genAllToAll) })
	RegisterTraffic(string(Hotspot), func() Traffic { return TrafficFunc(genHotspot) })
	RegisterTraffic(string(Ring), func() Traffic { return TrafficFunc(genRing) })
}

// genFanout: node 0 broadcasts bursts to every other node, round-robin.
func genFanout(p *Planner) error {
	for r := 0; r < p.Rounds(); r++ {
		for dst := 1; dst < p.Nodes(); dst++ {
			p.Emit(0, dst)
		}
	}
	return nil
}

// genAllToAll: every node bursts to every other node.
func genAllToAll(p *Planner) error {
	for src := 0; src < p.Nodes(); src++ {
		for r := 0; r < p.Rounds(); r++ {
			for dst := 0; dst < p.Nodes(); dst++ {
				if dst != src {
					p.Emit(src, dst)
				}
			}
		}
	}
	return nil
}

// genHotspot: skewed traffic onto one hot node, with the mid-phase RIED
// hot-swap planned at half the hot node's traffic (unless the scenario
// disables it).
func genHotspot(p *Planner) error {
	sc := p.Scenario()
	skew := sc.HotSkew
	if skew <= 0 {
		skew = 0.8
	}
	rng := p.RNG()
	hot := rng.Intn(p.Nodes())
	p.SetHotNode(hot)
	for src := 0; src < p.Nodes(); src++ {
		if src == hot {
			continue
		}
		for r := 0; r < p.Rounds()*(p.Nodes()-1); r++ {
			dst := hot
			// Background traffic needs a node that is neither the sender
			// nor the hot node; with 2 nodes none exists and every burst
			// goes hot.
			if p.Nodes() > 2 && !rng.Bernoulli(skew) {
				for {
					dst = rng.Intn(p.Nodes())
					if dst != src && dst != hot {
						break
					}
				}
			}
			p.Emit(src, dst)
		}
	}
	if !sc.DisableSwap {
		p.SwapAtHalf(hot, "tcbench")
	}
	return nil
}

// genRing: every node bursts to its clockwise neighbour.
func genRing(p *Planner) error {
	for r := 0; r < p.Rounds(); r++ {
		for src := 0; src < p.Nodes(); src++ {
			p.Emit(src, (src+1)%p.Nodes())
		}
	}
	return nil
}
