package workload

import (
	"errors"
	"sync"
	"testing"
)

// registerSilentTraffic registers the zero-emission fixture shape
// exactly once, regardless of which test runs first.
var silentOnce sync.Once

func registerSilentTraffic() {
	silentOnce.Do(func() {
		RegisterTraffic("test-silent", func() Traffic {
			return TrafficFunc(func(p *Planner) error { return nil })
		})
	})
}

// asScenarioError unwraps to the typed validation error.
func asScenarioError(err error, target **ScenarioError) bool {
	return errors.As(err, target)
}

// TestKVStoreScenarioRuns: the open-loop composed scenario completes
// its whole plan over the kvstore app with zero handler errors, and
// replays bit-identically.
func TestKVStoreScenarioRuns(t *testing.T) {
	sc := KVStoreScenario(6)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Injections == 0 || a.Injections != a.Phases[0].Planned {
		t.Fatalf("executed %d of %d planned", a.Injections, a.Phases[0].Planned)
	}
	for i, nr := range a.PerNode {
		if nr.Errors != 0 {
			t.Errorf("node %d: %d errors", i, nr.Errors)
		}
		if nr.Executed != nr.Sent {
			t.Errorf("node %d: executed %d of %d", i, nr.Executed, nr.Sent)
		}
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime {
		t.Fatalf("open-loop runs diverged: %x/%v vs %x/%v", a.Digest, a.SimTime, b.Digest, b.SimTime)
	}
}

// TestOpenLoopDiffersFromClosedLoop: the arrival process is part of the
// plan — switching the same scenario to closed loop changes timing.
func TestOpenLoopDiffersFromClosedLoop(t *testing.T) {
	open := KVStoreScenario(5)
	closed := KVStoreScenario(5)
	closed.Phases[0].Arrival = &Arrival{Kind: ClosedLoop}
	a, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(closed)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime == b.SimTime {
		t.Fatalf("open and closed loop finished at the identical simulated time %v", a.SimTime)
	}
	if a.Injections != b.Injections {
		t.Fatalf("arrival process changed the plan size: %d vs %d", a.Injections, b.Injections)
	}
}

// TestMultiPhaseScenario: phases open strictly in order, the planned
// RIED swap fires exactly at its phase boundary, and the whole
// composition replays bit-identically.
func TestMultiPhaseScenario(t *testing.T) {
	sc := MultiPhaseScenario(6)
	a, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phases) != 3 {
		t.Fatalf("phases = %d", len(a.Phases))
	}
	for i, ph := range a.Phases {
		if ph.Executed != ph.Planned {
			t.Errorf("phase %d (%s): executed %d of %d", i, ph.Name, ph.Executed, ph.Planned)
		}
		if i > 0 && ph.End < a.Phases[i-1].End {
			t.Errorf("phase %d ended before phase %d", i, i-1)
		}
	}
	if a.Phases[0].Swapped || !a.Phases[1].Swapped || a.Phases[2].Swapped {
		t.Errorf("swap flags = %v %v %v, want only the swap phase",
			a.Phases[0].Swapped, a.Phases[1].Swapped, a.Phases[2].Swapped)
	}
	if !a.Swapped {
		t.Error("run-level swap flag not set")
	}
	if a.HotNode < 0 || a.HotNode >= sc.Nodes {
		t.Errorf("drain-phase hot node = %d", a.HotNode)
	}
	var errSum int
	for _, nr := range a.PerNode {
		errSum += nr.Errors
	}
	if errSum != 0 {
		t.Fatalf("%d handler errors across the composition", errSum)
	}
	b, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime {
		t.Fatalf("multi-phase runs diverged: %x/%v vs %x/%v", a.Digest, a.SimTime, b.Digest, b.SimTime)
	}
}

// TestPhaseBarrier: with two phases, no phase-2 execution may be
// observed before the phase-1 plan has fully executed.
func TestPhaseBarrier(t *testing.T) {
	sc := DefaultScenario(AllToAll, 4)
	sc.Timing = false
	sc.Burst = 2
	sc.Rounds = 1
	sc.Phases = []Phase{
		{Name: "one", Mix: []ElementMix{{Elem: "jam_sssum", Weight: 1}}},
		{Name: "two", Mix: []ElementMix{{Elem: "jam_iput", Weight: 1}}},
	}
	phase1 := sc.Nodes * (sc.Nodes - 1) * sc.Burst
	// Phase 1 is pure jam_sssum (every return is the payload sum, a huge
	// value); phase 2 is pure jam_iput (returns heap offsets < 4 MB).
	sum := expectedSum(scenarioPayload(sc.PayloadBytes))
	seen := 0
	bad := false
	sc.OnExecuted = func(node int, ret uint64, err error) {
		if err != nil {
			t.Errorf("node %d: %v", node, err)
			return
		}
		if ret == sum {
			seen++
			return
		}
		if seen < phase1 {
			bad = true
		}
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("phase 2 execution observed before phase 1 completed")
	}
	if res.Phases[0].Executed != phase1 || res.Phases[1].Executed != phase1 {
		t.Fatalf("phase executions %d/%d, want %d each",
			res.Phases[0].Executed, res.Phases[1].Executed, phase1)
	}
	if res.Phases[0].End > res.Phases[1].End {
		t.Fatal("phase ends out of order")
	}
}

// TestLegacyHotspotViaPhases: the hotspot pattern expressed as a single
// explicit phase produces the identical run to the phaseless spelling —
// the legacy surface is sugar over the phase machinery.
func TestLegacyHotspotViaPhases(t *testing.T) {
	plain := DefaultScenario(Hotspot, 6)
	plain.Rounds = 2

	phased := plain
	phased.Phases = []Phase{{Name: "only"}}

	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(phased)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest || a.SimTime != b.SimTime || a.Injections != b.Injections {
		t.Fatalf("phaseless and single-phase runs differ: %x/%v/%d vs %x/%v/%d",
			a.Digest, a.SimTime, a.Injections, b.Digest, b.SimTime, b.Injections)
	}
	if !b.Swapped {
		t.Error("hotspot builtin swap did not fire through the phase path")
	}
}

// TestSwapOnlyPhase: a phase with traffic but no plan for some senders
// and a swap-only phase chain straight through without deadlock.
func TestSwapOnlyPhase(t *testing.T) {
	sc := DefaultScenario(Fanout, 4)
	sc.Timing = false
	sc.Rounds = 1
	sc.Burst = 2
	// The middle phase plans zero messages: a swap-only stage built from
	// a traffic shape that emits nothing.
	registerSilentTraffic()
	sc.Phases = []Phase{
		{Name: "pre"},
		{Name: "swap-only", Traffic: "test-silent", Swap: &Swap{Node: 2, App: "tcbench"}},
		{Name: "post"},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[1].Swapped {
		t.Error("swap-only phase did not swap")
	}
	if res.Phases[1].Planned != 0 || res.Phases[1].Executed != 0 {
		t.Errorf("swap-only phase planned %d executed %d", res.Phases[1].Planned, res.Phases[1].Executed)
	}
	want := (sc.Nodes - 1) * sc.Burst
	if res.Phases[0].Executed != want || res.Phases[2].Executed != want {
		t.Errorf("traffic phases executed %d/%d, want %d each",
			res.Phases[0].Executed, res.Phases[2].Executed, want)
	}
}

// TestLeadingSwapOnlyPhase: a scenario may open with a zero-traffic
// swap phase; the run must chain into the real traffic, not deadlock.
func TestLeadingSwapOnlyPhase(t *testing.T) {
	registerSilentTraffic()
	sc := DefaultScenario(Fanout, 3)
	sc.Timing = false
	sc.Rounds = 1
	sc.Burst = 2
	sc.Phases = []Phase{
		{Name: "swap-first", Traffic: "test-silent", Swap: &Swap{Node: 1, App: "tcbench"}},
		{Name: "traffic"},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Phases[0].Swapped {
		t.Error("leading swap did not fire")
	}
	want := (sc.Nodes - 1) * sc.Burst
	if res.Phases[1].Executed != want {
		t.Fatalf("traffic phase executed %d, want %d", res.Phases[1].Executed, want)
	}
}

// TestMultiPackageOracleMix: a single-element kvstore phase checked
// against per-node oracles — puts must return the oracle's slot for the
// same key sequence (per-node execution order is the issue order of the
// deterministic plan only when one sender targets each node, so use a
// fanout where node 0 is the only sender).
func TestMultiPackageOracleMix(t *testing.T) {
	sc := DefaultScenario(Fanout, 4)
	sc.Timing = false
	sc.Burst = 3
	sc.Rounds = 2
	sc.Phases = []Phase{{
		Name:       "puts",
		Mix:        []ElementMix{{Pkg: "kvstore", Elem: "jam_kv_put", Weight: 1}},
		Arg1Random: true,
	}}
	type exec struct {
		node int
		ret  uint64
	}
	var execs []exec
	sc.OnExecuted = func(node int, ret uint64, err error) {
		if err != nil {
			t.Errorf("node %d: %v", node, err)
			return
		}
		execs = append(execs, exec{node, ret})
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injections == 0 {
		t.Fatal("no executions")
	}
	// Replay the plan against per-node oracles: regenerate the argument
	// stream by rerunning the same scenario and capturing per-burst args
	// through a second run's OnExecuted is not possible (args are not
	// surfaced), so instead check the structural invariant the oracle
	// guarantees: every put returns a slot < kvstore table size.
	for _, e := range execs {
		if e.ret >= 16384 {
			t.Fatalf("node %d put returned %d, want a slot < 16384", e.node, e.ret)
		}
	}
}
