// Package workload is the composable scenario driver: it provisions a
// sharded many-node tc.System, generates a deterministic traffic plan,
// drives batched frame injection through pre-resolved tc.Func handles
// (one handle per sender and element, bound once per destination), and
// reports simulated injections/sec plus a run digest.
//
// # The Traffic/Phase model
//
// A Scenario is data all the way down. Its traffic shape is a Traffic —
// a deterministic plan generator over a Topology view — selected by
// registered name, so new shapes are registrations, not forks of this
// package. The three paper patterns (fanout, alltoall, hotspot) are
// registered implementations whose plans are bit-identical to the
// pre-registry driver; golden tests pin their digests and simulated
// times per seed.
//
// A scenario runs as a sequence of Phases, each with its own traffic,
// element mix, arrival process, and optional RIED swap (a RIED — a
// relocatable interface distribution — is the shared library a process
// loads to set up interfaces and data objects; swapping one mid-run is
// the paper's remote-linking dynamic update). Phase k+1 opens when
// every message phase k planned has executed, so warmup -> swap ->
// drain pipelines are scenario data rather than bespoke driver code. A
// phaseless scenario is one closed-loop phase of Scenario.Pattern — the
// legacy surface, unchanged.
//
// Mix entries name a package and an element (Pkg + Elem), resolved
// through the tcapp registry: a phase can mix tcbench Indirect Puts
// with kvstore puts and histo reduces, and the driver installs every
// referenced package and sizes mailbox frames for the largest message.
//
// # Arrivals
//
// Closed-loop (default): each sender self-clocks — burst k+1 is issued
// from the completion of burst k, so the fabric runs loaded but
// bounded. Open-loop (Arrival{Kind: Poisson, RatePerSec: r}): each
// sender's bursts arrive at exponential interarrival gaps drawn at plan
// time, independent of completions — the offered-load shape, where
// queueing (credit stalls) is part of the measurement.
//
// All randomness — element choice, argument words, hotspot target and
// skew, arrival gaps — flows from one sim RNG seeded by Scenario.Seed;
// plans are generated before simulation starts, so equal seeds give
// bit-identical digests and simulated times for any registered Traffic.
package workload

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"twochains/internal/core"
	"twochains/internal/fabric"
	"twochains/internal/sim"
	"twochains/internal/tc"
	"twochains/internal/tcapp"
)

// Pattern names a registered traffic shape.
type Pattern string

// The built-in traffic shapes.
const (
	Fanout   Pattern = "fanout"
	AllToAll Pattern = "alltoall"
	Hotspot  Pattern = "hotspot"
	Ring     Pattern = "ring"
)

// Patterns lists the three paper patterns in canonical order (the mesh
// experiments iterate these; TrafficNames lists everything registered,
// including Ring and third-party shapes).
func Patterns() []Pattern { return []Pattern{Fanout, AllToAll, Hotspot} }

// DefaultPkg is the package a mix entry with an empty Pkg refers to.
const DefaultPkg = "tcbench"

// ElementMix is one entry of a phase's traffic mix: an element of a
// tcapp-registered package with a selection weight, sent either as an
// Injected Function (code travels) or a Local Function (IDs travel).
type ElementMix struct {
	// Pkg is the tcapp-registered application package ("" = tcbench).
	Pkg    string
	Elem   string
	Weight int
	Local  bool
}

// ArrivalKind selects a phase's arrival process.
type ArrivalKind uint8

const (
	// ClosedLoop self-clocks: a sender's next burst is issued from the
	// completion of its previous one.
	ClosedLoop ArrivalKind = iota
	// Poisson issues each sender's bursts at exponential interarrival
	// gaps (drawn deterministically at plan time), independent of
	// completions — open-loop offered load.
	Poisson
	// MMPP issues bursts from a two-state Markov-modulated Poisson
	// process: a base state at RatePerSec and a burst state at
	// BurstRatePerSec, with exponential sojourns of mean MeanBase /
	// MeanBurst — open-loop bursty offered load.
	MMPP
	// Trace replays recorded inter-arrival gaps (Arrival.Trace)
	// cyclically per sender — open-loop measured load, no randomness.
	Trace
)

// Arrival is a phase's arrival process. Kinds beyond the built-ins can
// be added with RegisterArrival; validation enumerates the registry.
type Arrival struct {
	Kind ArrivalKind
	// RatePerSec is the mean burst arrival rate per sender in simulated
	// seconds (Poisson; the MMPP base state).
	RatePerSec float64
	// BurstRatePerSec is the MMPP burst state's arrival rate.
	BurstRatePerSec float64
	// MeanBase/MeanBurst are the MMPP mean state sojourns.
	MeanBase  sim.Duration
	MeanBurst sim.Duration
	// Trace holds recorded inter-arrival gaps for Kind Trace, replayed
	// cyclically by every sender.
	Trace []sim.Duration
}

// Swap is a remote-linking dynamic update expressed as data: when the
// owning phase opens, the RIED elements of the named app are
// re-installed on Node (replacing name bindings) and every channel into
// it re-runs the namespace exchange. In-flight Func handles re-bind on
// their next call.
type Swap struct {
	Node int
	// App is the tcapp-registered application whose RIEDs are
	// reinstalled ("" = tcbench).
	App string
}

// Fail schedules a hard node failure as phase data: At after the
// owning phase opens, Node is torn down — its channels are severed,
// queued sends into and out of it fail fast with *core.NodeDownError,
// sender-side prepared-jam caches for it are invalidated, and every
// message addressed to it that had been issued but not yet executed is
// accounted as lost (Result.Lost). The node's own unissued plan is
// abandoned and counted lost too.
type Fail struct {
	Node int
	At   sim.Duration
}

// Rejoin brings a previously failed node back when the owning phase
// opens. The node returns with empty channel state: channels into and
// out of it rebuild lazily on the next call, re-running the namespace
// exchange, under the same serial-hold discipline as initial lazy
// channel creation.
type Rejoin struct {
	Node int
}

// Phase is one stage of a scenario. Zero fields inherit the scenario-
// level value (Traffic from Pattern, Rounds/Burst/Mix/Arrival from the
// scenario); a phase opens when the previous phase's plan has fully
// executed.
type Phase struct {
	Name    string
	Traffic string // registered traffic name ("" = Scenario.Pattern)
	Rounds  int
	Burst   int
	Mix     []ElementMix
	Arrival *Arrival
	Swap    *Swap
	// Fail schedules node failures at offsets from phase open; Rejoin
	// brings nodes failed in earlier phases back when this phase opens.
	// Both are rejected in multi-tenant mode.
	Fail   []Fail
	Rejoin []Rejoin
	// Arg1Random additionally draws the second argument word per message
	// (value-carrying app workloads use it; the legacy patterns leave
	// args[1] zero and consume no extra randomness).
	Arg1Random bool
}

// ChaosSpec perturbs the fabric: the scenario's backend is wrapped in
// the "chaos" transport, which delays every put by a deterministic
// pseudo-random duration in [MinDelay, MaxDelay] (preserving per-
// destination order) and optionally misadvertises the backend's
// lookahead. LookaheadScale in (0, 1) shrinks the advertised bound — a
// legal stressor that forces smaller conservative windows;
// LookaheadBoost > 0 inflates it past the truth, an adversarial
// contract violation the parallel engine must catch loudly (speculation
// rollback + diagnostic panic), never absorb silently.
type ChaosSpec struct {
	MinDelay       sim.Duration
	MaxDelay       sim.Duration
	LookaheadScale float64
	LookaheadBoost sim.Duration
}

// Scenario parameterizes one workload run.
type Scenario struct {
	// Pattern is the traffic shape of a phaseless scenario, and the
	// default Traffic of every phase.
	Pattern Pattern
	// Nodes is the mesh size; Shards the fabric-shard count (0 = default).
	Nodes, Shards int
	// Workers > 1 runs the simulation on the multi-core conservative
	// engine: each fabric shard's event loop on its own worker goroutine,
	// with digests and simulated times bit-identical to Workers <= 1.
	// The driver holds the engine serial across every zero-lookahead
	// global action (lazy channel creation, phase barriers, RIED
	// hot-swaps) and lets the steady state run in parallel windows.
	// With Workers > 1 a scenario-level OnExecuted hook may be invoked
	// from concurrent shard workers and must be safe for that.
	Workers int
	// Speculation is the parallel engine's speculative-window budget: how
	// far past the conservative horizon a shard may run when the
	// reachability bound allows it. Zero keeps windows strictly
	// conservative; results are bit-identical either way. Ignored unless
	// Workers > 1.
	Speculation sim.Duration
	// Burst is the messages per batched injection; Rounds the traffic
	// generator's repetition knob.
	Burst, Rounds int
	PayloadBytes  int
	// Mix is the default element mix; empty selects DefaultMix.
	Mix  []ElementMix
	Seed uint64
	// Timing enables the cache/CPU cost model (required for meaningful
	// rates; functional tests turn it off for speed).
	Timing bool
	// Interpreter forces every node's VM through the reference interpret
	// loop instead of the compiled jam translations. Results and digests
	// must be bit-identical either way — the JIT equivalence sweep runs
	// each scenario under both settings and compares.
	Interpreter bool
	// HotSkew is the probability a hotspot burst targets the hot node
	// (0 = default 0.8). Ignored by other patterns.
	HotSkew float64
	// DisableSwap turns off the hotspot pattern's built-in mid-phase
	// RIED hot-swap (phase-level Swap entries are unaffected).
	DisableSwap bool
	// Backend selects the fabric transport ("" = default "simnet").
	Backend string
	// Chaos, when set, wraps Backend in the chaos failure-injection
	// transport with these perturbation bounds. Equal seeds still give
	// bit-identical results at every worker count: the perturbation RNG
	// is split per port and consumed in issue order on the issuing shard.
	Chaos *ChaosSpec
	// Arrival is the default arrival process (closed loop unless set).
	Arrival Arrival
	// Phases composes the run; empty means one closed-loop phase of
	// Pattern.
	Phases []Phase
	// Tenants switches the run into multi-tenant mode: each entry drives
	// its own traffic lanes (its Phases, or the scenario-level phases when
	// unset) through a per-tenant package namespace, weighted-fair
	// servicing at every receiver, and optional token-bucket admission.
	// Result.Tenants reports per-tenant goodput, drop/defer counts, and
	// p99 simulated latency. Empty keeps the single-tenant surface
	// bit-identical to previous releases.
	Tenants []TenantSpec

	// OnExecuted observes every handler execution (node index, return
	// value, error) — the hook equivalence tests use to compare injected
	// execution against a native oracle.
	OnExecuted func(node int, ret uint64, err error)
}

// DefaultScenario returns a ready-to-run scenario of the given pattern.
func DefaultScenario(p Pattern, nodes int) Scenario {
	return Scenario{
		Pattern:      p,
		Nodes:        nodes,
		Burst:        8,
		Rounds:       3,
		PayloadBytes: 64,
		Seed:         0x7c2c2021,
		Timing:       true,
	}
}

// DefaultMix is the standard mixed workload: mostly injected code, some
// Local Function traffic.
func DefaultMix() []ElementMix {
	return []ElementMix{
		{Elem: "jam_sssum", Weight: 3},
		{Elem: "jam_iput", Weight: 2},
		{Elem: "jam_sssum", Weight: 1, Local: true},
	}
}

// NodeResult is one node's view of the run.
type NodeResult struct {
	// Sent is the number of messages the plan addressed to this node;
	// Executed the handlers that ran; Errors the handler failures.
	Sent     int
	Executed int
	Errors   int
	// Digest folds this node's return values in execution order.
	Digest uint64
}

// PhaseResult is one phase's slice of the run.
type PhaseResult struct {
	Name string
	// Planned is the phase's planned message count; Executed the handler
	// completions (including faults) attributed to it in plan order.
	Planned  int
	Executed int
	// End is the simulated time the phase's plan finished executing.
	End sim.Duration
	// Swapped reports that the phase performed a RIED swap (its own Swap
	// entry or the hotspot pattern's built-in one).
	Swapped bool
}

// Result reports one scenario run.
type Result struct {
	Scenario   Scenario
	Shards     int    // fabric shards actually used
	Workers    int    // engine workers actually used (1 = sequential)
	Windows    uint64 // parallel windows executed (0 = stayed serial)
	Injections int    // handlers executed fabric-wide
	// Lost counts planned messages a node failure made unexecutable:
	// issued-but-not-executed backlog into the dead node, queued sends
	// out of it, its own unissued plan, and bursts refused at issue while
	// it was down. Executed + handler errors + Lost always equals the
	// planned total — every planned message is accounted for exactly once.
	Lost       int
	SimTime    sim.Duration // simulated wall time of the whole run
	RatePerSec float64      // simulated injections per simulated second
	Digest     uint64       // order-insensitive fold of per-node digests
	PerNode    []NodeResult
	Phases     []PhaseResult
	Mesh       core.MeshStats
	Swapped    bool // a RIED swap fired during the run
	HotNode    int  // skew target of the last hotspot phase (-1 otherwise)
	// Tenants reports per-tenant outcomes of a multi-tenant run (nil
	// otherwise); in that mode per-phase results live on each tenant and
	// the top-level Phases slice is empty.
	Tenants []TenantResult
	// OverlapWindow is the interval every tenant was still being serviced
	// in: the minimum over tenants of their last service stamp. Per-tenant
	// goodput is measured inside it, so weight shares compare servicing
	// rates, not drain tails.
	OverlapWindow sim.Duration
}

// burst is one planned batched send.
type burst struct {
	dst   int
	mix   ElementMix
	args  [][2]uint64
	local bool
	// at is the open-loop issue offset from phase open (closed loop: 0).
	at sim.Duration
}

// phasePlan is one phase's deterministic, pre-generated traffic
// schedule: one burst queue per sender, plus the phase's planned
// dynamic updates.
type phasePlan struct {
	spec   *phaseSpec
	bursts [][]burst // indexed by sender
	sent   []int     // messages addressed per destination
	total  int
	// hotNode is the phase's skew target (-1 none).
	hotNode int
	// swapNode/swapApp plan the SwapAtHalf trigger (-1 none); the
	// executed-count threshold is armed when the phase opens, and
	// swapFired keeps the trigger one-shot independent of any open-time
	// Swap entry the same phase performed.
	swapNode    int
	swapApp     string
	swapTrigger int
	swapFired   bool
}

// buildPlan runs the phase's Traffic generator, consuming the RNG in
// the generator's emission order so the schedule is a pure function of
// the scenario, then draws open-loop arrival gaps (senders ascending).
func buildPlan(sc *Scenario, topo Topology, spec *phaseSpec, rng *sim.RNG) (*phasePlan, error) {
	pp := &phasePlan{
		spec:     spec,
		bursts:   make([][]burst, topo.Nodes),
		sent:     make([]int, topo.Nodes),
		hotNode:  -1,
		swapNode: -1,
	}
	tr, ok := newTraffic(spec.traffic)
	if !ok {
		return nil, &ScenarioError{Field: spec.at("Traffic"), Reason: fmt.Sprintf("unknown traffic %q", spec.traffic)}
	}
	p := &Planner{topo: topo, sc: sc, spec: spec, rng: rng, pp: pp}
	if err := tr.Generate(p); err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	if gen := arrivalKinds[spec.arrival.Kind]; gen != nil && gen.gen != nil {
		for src := range pp.bursts {
			if len(pp.bursts[src]) == 0 {
				continue
			}
			ats := gen.gen(&spec.arrival, rng, len(pp.bursts[src]))
			for i := range pp.bursts[src] {
				pp.bursts[src][i].at = ats[i]
			}
		}
	}
	return pp, nil
}

// runner drives one scenario run: it owns the per-phase plans, the
// phase barrier, the per-sender handle caches, the swap machinery, and —
// under the parallel engine — the serial holds that bracket every
// zero-lookahead global action.
type runner struct {
	sc    *Scenario
	sys   *tc.System
	res   *Result
	plans []*phasePlan
	cum   []int // cumulative planned messages through each phase

	phase       int          // index of the open phase
	executedAll atomic.Int64 // executions + errors so far, fabric-wide
	phaseExec   []atomic.Int64

	payload []byte
	fns     []map[[2]string]*tc.Func // per sender: (pkg, elem) -> handle

	// failed is the senders' fast stop check; errMu guards the errors
	// behind it (issue failures can surface on any shard worker).
	failed   atomic.Bool
	errMu    sync.Mutex
	issueErr error
	swapErr  error

	// Parallel-engine serial holds. Phase barriers, the open phase's
	// not-yet-created channels, and an armed mid-phase swap each pin the
	// engine serial; the holds release at deterministic simulation events
	// (last phase opened, last channel created, swap fired), so the
	// window schedule — and with it the whole run — is a pure function of
	// the scenario. Channel creation order matters down to node memory
	// layout (a region's address feeds the cache model), which is why
	// creations must happen in exact global event order.
	sharded    bool
	phasesHold bool
	pairsHold  bool
	swapHold   bool
	missing    map[[2]int]bool // open phase's channels still to create

	// Failure injection. chains exposes each sender's closed-loop issue
	// state so a node failure can abandon (and account) the dead node's
	// unissued remainder; issued counts successfully issued messages per
	// destination (atomics: senders on any shard write them); lost tallies
	// messages a failure made unexecutable; down marks nodes currently
	// failed (written and read only under serial execution: doFail and
	// openPhase). An armed Fail pins the engine serial until it fires —
	// teardown is a zero-lookahead global action.
	chains []*chainState
	issued []atomic.Int64
	lost   atomic.Int64
	down   []bool

	// Multi-tenant mode (see tenants.go). Lanes are the per-tenant
	// traffic programs; laneByView routes channel-creation events to the
	// owning lane; missingV tracks the tenant channels the open phases
	// still need; pendingLanes counts lanes still short of their final
	// phase while the multi-phase hold is up.
	lanes        []*lane
	laneByView   map[string]*lane
	missingV     map[laneChanKey]bool
	pendingLanes int
}

// fail records the first issue error and stops every sender.
func (r *runner) fail(err error) {
	r.errMu.Lock()
	if r.issueErr == nil {
		r.issueErr = err
	}
	r.errMu.Unlock()
	r.failed.Store(true)
}

// onChannel observes every lazy channel creation: tenant-view channels
// get their lane's receiver instrumentation attached, and the serial
// hold releases once the open phases' channel set — base and tenant —
// is complete.
func (r *runner) onChannel(src, dst int, view string, ch *core.Channel) {
	if view != "" {
		if l := r.laneByView[view]; l != nil {
			r.hookLaneChannel(l, dst, ch)
		}
		if r.pairsHold {
			k := laneChanKey{src, dst, view}
			if r.missingV[k] {
				delete(r.missingV, k)
				r.maybeReleasePairs()
			}
		}
		return
	}
	if !r.pairsHold {
		return
	}
	k := [2]int{src, dst}
	if r.missing[k] {
		delete(r.missing, k)
		r.maybeReleasePairs()
	}
}

// maybeReleasePairs drops the channel-creation hold once no channel —
// base or tenant-view — is still missing.
func (r *runner) maybeReleasePairs() {
	if len(r.missing) == 0 && len(r.missingV) == 0 {
		r.pairsHold = false
		r.sys.ReleaseSerial()
	}
}

// fnFor resolves (and caches) the sender's handle for one element — the
// bind-once/call-many idiom.
func (r *runner) fnFor(src int, pkg, elem string) (*tc.Func, error) {
	if r.fns[src] == nil {
		r.fns[src] = map[[2]string]*tc.Func{}
	}
	key := [2]string{pkg, elem}
	if f, ok := r.fns[src][key]; ok {
		return f, nil
	}
	f, err := r.sys.Func(src, pkg, elem)
	if err != nil {
		return nil, err
	}
	r.fns[src][key] = f
	return f, nil
}

// performSwap re-installs the app's RIED elements on the node
// (replacing name bindings) and re-runs the namespace exchange on every
// channel into it — the remote-linking dynamic update, performed while
// traffic may still be in flight.
func (r *runner) performSwap(node int, app string) {
	if app == "" {
		app = DefaultPkg
	}
	err := func() error {
		spkg, err := tcapp.BuildRieds(app)
		if err != nil {
			return err
		}
		for _, e := range spkg.Elements {
			if e.Kind != core.ElemRied {
				continue
			}
			if _, err := r.sys.InstallRied(node, e.Ried, true); err != nil {
				return err
			}
		}
		r.sys.RefreshNames(node)
		return nil
	}()
	if err != nil && r.swapErr == nil {
		r.swapErr = err
	}
	r.res.Swapped = true
	r.res.Phases[r.phase].Swapped = true
}

// openPhase performs the phase's planned swap, arms its SwapAtHalf
// trigger against the swap node's current executed count, pins the
// engine serial while the phase has channels to create or a swap armed,
// and starts its senders.
func (r *runner) openPhase() {
	pp := r.plans[r.phase]
	// Rejoins happen at phase open, before the missing-channel scan:
	// channels into the rejoined node rebuild lazily under the same
	// serial hold as initial lazy creation.
	for _, rj := range pp.spec.rejoin {
		if err := r.sys.RejoinNode(rj.Node); err != nil {
			r.fail(err)
			return
		}
		r.down[rj.Node] = false
	}
	if pp.spec.swap != nil {
		r.performSwap(pp.spec.swap.Node, pp.spec.swap.App)
	}
	if pp.swapNode >= 0 {
		pp.swapTrigger = r.res.PerNode[pp.swapNode].Executed + pp.sent[pp.swapNode]/2
	}
	if r.sharded {
		if pp.swapNode >= 0 && !pp.swapFired && !r.swapHold {
			r.swapHold = true
			r.sys.HoldSerial()
		}
		for k := range r.missing {
			delete(r.missing, k)
		}
		for src := range pp.bursts {
			for i := range pp.bursts[src] {
				k := [2]int{src, pp.bursts[src][i].dst}
				// Pairs touching a down node are skipped: no channel will be
				// created while it is down, so waiting on one would pin the
				// engine serial forever. Their bursts fail at issue and are
				// accounted lost.
				if r.down[src] || r.down[k[1]] {
					continue
				}
				if !r.missing[k] && !r.sys.Mesh().HasChannel(src, k[1]) {
					r.missing[k] = true
				}
			}
		}
		if len(r.missing) > 0 && !r.pairsHold {
			r.pairsHold = true
			r.sys.HoldSerial()
		}
	}
	// An armed failure pins the engine serial until it fires: teardown
	// severs channels and fails queued sends fabric-wide, a zero-
	// lookahead global action.
	for _, fl := range pp.spec.fail {
		f := fl
		r.sys.HoldSerial()
		r.sys.After(f.Node, f.At, func() {
			r.doFail(f.Node)
			r.sys.ReleaseSerial()
		})
	}
	for src := range pp.bursts {
		if len(pp.bursts[src]) == 0 {
			continue
		}
		if pp.spec.arrival.openLoop() {
			r.armOpenSender(src, pp.bursts[src])
		} else {
			r.armClosedSender(src, pp.bursts[src])
		}
	}
}

// advance opens phases until the open one still has unexecuted plan (or
// the run is out of phases). Called at start and from the execution
// hook each time a phase's plan completes. While a non-final phase is
// open the engine is held serial (the phase barrier is a zero-lookahead
// global action: the moment the count trips, senders on every shard arm
// at the same instant).
func (r *runner) advance() {
	for r.phase < len(r.plans)-1 && int(r.executedAll.Load()) >= r.cum[r.phase] {
		r.res.Phases[r.phase].End = sim.Duration(r.sys.Now())
		r.phase++
		r.openPhase()
		if r.phase == len(r.plans)-1 && r.phasesHold {
			r.phasesHold = false
			r.sys.ReleaseSerial()
		}
	}
}

// chainState is one closed-loop sender's issue position, hoisted out of
// the sender closure so a node failure can abandon the chain and count
// its unissued remainder.
type chainState struct {
	queue []burst
	next  int
	dead  bool
}

// addLost accounts n planned messages a failure made unexecutable.
// Lost messages advance the phase barrier exactly like executions —
// they are resolved plan, just resolved by loss — so phases keep
// opening and the final accounting stays exact. The same serial-
// discipline argument as the execution hook applies: while a non-final
// phase is open the engine is serial, and in the final phase advance is
// a no-op.
func (r *runner) addLost(n int) {
	if n <= 0 {
		return
	}
	r.lost.Add(int64(n))
	r.executedAll.Add(int64(n))
	r.advance()
}

// accountDown absorbs an issue refusal caused by a failed node: the
// burst's messages are lost, the sender goes on. Any other issue error
// still stops the run.
func (r *runner) accountDown(err error, n int) bool {
	var nd *core.NodeDownError
	if !errors.As(err, &nd) {
		return false
	}
	r.addLost(n)
	return true
}

// doFail tears node down mid-run. It executes serially (the armed Fail
// holds the engine) so the loss ledger is exact: every planned message
// lands in exactly one of executed, handler-errored, or lost.
func (r *runner) doFail(node int) {
	// Abandon the dead node's own unissued plan first, so the FailPending
	// callbacks below (which re-fire issue chains synchronously) see the
	// chain already dead.
	var abandoned int
	if cs := r.chains[node]; cs != nil && !cs.dead {
		cs.dead = true
		for _, b := range cs.queue[cs.next:] {
			abandoned += len(b.args)
		}
	}
	r.down[node] = true
	// Channels touching the dead node will not be created while it is
	// down: drop them from the open phase's missing set, or the channel-
	// creation hold would pin the engine serial forever.
	if r.pairsHold {
		for k := range r.missing {
			if k[0] == node || k[1] == node {
				delete(r.missing, k)
			}
		}
		r.maybeReleasePairs()
	}
	outbound, err := r.sys.FailNode(node)
	if err != nil {
		r.fail(err)
		return
	}
	// Inbound backlog: issued to the node but never completed — queued
	// sends FailNode just failed, frames delivered but not yet serviced,
	// and traffic still on the wire (its delivery writes memory but the
	// stopped receiver never services it).
	nr := &r.res.PerNode[node]
	backlog := int(r.issued[node].Load()) - nr.Executed - nr.Errors
	r.addLost(abandoned + outbound + backlog)
}

// armClosedSender installs the self-clocked issue chain: each sender
// fires its next burst when the last message of the previous one
// completes delivery. One completion callback per sender, not per
// burst: fire is the self-clock, onDone re-arms it.
func (r *runner) armClosedSender(src int, queue []burst) {
	s := src
	cs := &chainState{queue: queue}
	r.chains[s] = cs
	var fire func()
	onDone := func(tc.Result) { fire() }
	payloadOpt := tc.Payload(r.payload)
	localOpt := tc.Local()
	optScratch := make([]tc.CallOpt, 0, 3)
	fire = func() {
		for {
			if cs.next >= len(cs.queue) || cs.dead || r.failed.Load() {
				return
			}
			b := &cs.queue[cs.next]
			cs.next++
			fn, err := r.fnFor(s, b.mix.Pkg, b.mix.Elem)
			if err != nil {
				r.fail(err)
				return
			}
			callOpts := append(optScratch[:0], tc.Burst(b.args), payloadOpt)
			if b.local {
				callOpts = append(callOpts, localOpt)
			}
			fu := fn.Call(b.dst, b.args[0], callOpts...)
			if err := fu.IssueErr(); err != nil {
				// A burst refused because a node is down is lost, and the
				// chain self-clocks straight into its next burst; any other
				// synchronous issue failure (bad element) stops the run.
				if r.accountDown(err, len(b.args)) {
					continue
				}
				r.fail(err)
				return
			}
			r.issued[b.dst].Add(int64(len(b.args)))
			fu.Done(onDone)
			// The future is not touched after its Done callback: hand it
			// back to the pool so self-clocked senders recycle one future
			// per in-flight burst instead of allocating per burst.
			fu.Release()
			return
		}
	}
	r.sys.After(src, 0, fire)
}

// armOpenSender schedules every burst at its pre-drawn arrival offset
// from now — open-loop offered load, independent of completions.
func (r *runner) armOpenSender(src int, queue []burst) {
	payloadOpt := tc.Payload(r.payload)
	localOpt := tc.Local()
	// Func.Call consumes its options synchronously, so one per-sender
	// scratch serves every scheduled burst — the issue path allocates no
	// option slice, matching the closed-loop sender.
	optScratch := make([]tc.CallOpt, 0, 3)
	for i := range queue {
		b := &queue[i]
		r.sys.After(src, b.at, func() {
			if r.failed.Load() {
				return
			}
			fn, err := r.fnFor(src, b.mix.Pkg, b.mix.Elem)
			if err != nil {
				r.fail(err)
				return
			}
			callOpts := append(optScratch[:0], tc.Burst(b.args), payloadOpt)
			if b.local {
				callOpts = append(callOpts, localOpt)
			}
			fu := fn.Call(b.dst, b.args[0], callOpts...)
			if err := fu.IssueErr(); err != nil {
				if r.accountDown(err, len(b.args)) {
					return
				}
				r.fail(err)
				return
			}
			r.issued[b.dst].Add(int64(len(b.args)))
			// Fire and forget: the unobserved future recycles itself.
		})
	}
}

// Run executes the scenario and reports the result. The run is fully
// deterministic: equal scenarios produce equal results. Validation and
// plan-building failures are *ScenarioError.
func Run(sc Scenario) (*Result, error) {
	if err := sc.validateScalars(); err != nil {
		return nil, err
	}
	// resolvePhases both defaults and validates the phase surface — one
	// pass covers what Validate would check.
	specs, err := sc.resolvePhases()
	if err != nil {
		return nil, err
	}
	if len(sc.Tenants) > 0 {
		return runTenants(&sc, specs)
	}
	pkgs, err := packagesFor(specs)
	if err != nil {
		return nil, err
	}
	frame, err := frameSizeFor(pkgs, specs, sc.PayloadBytes)
	if err != nil {
		return nil, err
	}

	opts := []tc.SystemOpt{
		tc.WithSeed(sc.Seed),
		tc.WithTiming(sc.Timing),
		tc.WithBackend(sc.Backend),
		tc.WithWorkers(sc.Workers),
		tc.WithSpeculation(sc.Speculation),
		tc.WithConfig(func(c *core.MeshConfig) { c.Geometry.FrameSize = frame }),
	}
	if sc.Shards > 0 {
		opts = append(opts, tc.WithShards(sc.Shards))
	}
	if sc.Interpreter {
		opts = append(opts, tc.WithInterpreter())
	}
	if sc.Chaos != nil {
		opts = append(opts, tc.WithChaos(fabric.ChaosConfig{
			MinDelay:       sc.Chaos.MinDelay,
			MaxDelay:       sc.Chaos.MaxDelay,
			LookaheadScale: sc.Chaos.LookaheadScale,
			LookaheadBoost: sc.Chaos.LookaheadBoost,
		}))
	}
	sys, err := tc.NewSystem(sc.Nodes, opts...)
	if err != nil {
		return nil, err
	}
	// Install every referenced package in name order, so package IDs are
	// a pure function of the scenario.
	for _, name := range sortedKeys(pkgs) {
		if err := sys.InstallPackage(pkgs[name]); err != nil {
			return nil, err
		}
	}

	topo := Topology{
		Nodes:   sc.Nodes,
		Shards:  sys.Mesh().Cfg.Shards,
		ShardOf: sys.ShardOf,
	}
	res := &Result{
		Scenario: sc,
		Shards:   topo.Shards,
		Workers:  sys.Workers(),
		PerNode:  make([]NodeResult, sc.Nodes),
		Phases:   make([]PhaseResult, len(specs)),
		HotNode:  -1,
	}
	r := &runner{
		sc:        &sc,
		sys:       sys,
		res:       res,
		plans:     make([]*phasePlan, len(specs)),
		cum:       make([]int, len(specs)),
		phaseExec: make([]atomic.Int64, len(specs)),
		fns:       make([]map[[2]string]*tc.Func, sc.Nodes),
		payload:   make([]byte, sc.PayloadBytes),
		sharded:   sys.Sharded(),
		missing:   map[[2]int]bool{},
		chains:    make([]*chainState, sc.Nodes),
		issued:    make([]atomic.Int64, sc.Nodes),
		down:      make([]bool, sc.Nodes),
	}
	sys.Mesh().OnChannelCreated = r.onChannel
	for i := range r.payload {
		r.payload[i] = byte(i*31 + 7)
	}
	// Plans are generated phase by phase from the one seeded RNG before
	// the simulation starts.
	total := 0
	for i := range specs {
		pp, err := buildPlan(&sc, topo, &specs[i], sys.RNG())
		if err != nil {
			return nil, err
		}
		r.plans[i] = pp
		total += pp.total
		r.cum[i] = total
		res.Phases[i].Name = specs[i].name
		res.Phases[i].Planned = pp.total
		if pp.hotNode >= 0 {
			res.HotNode = pp.hotNode
		}
		for dst, n := range pp.sent {
			res.PerNode[dst].Sent += n
		}
	}

	for i := 0; i < sc.Nodes; i++ {
		node := i
		sys.Node(i).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			// Per-node state belongs to the executing node's shard; the
			// fabric-wide tallies are atomic; everything phase-advancing
			// or swap-triggering only ever runs while the engine is
			// serial (the corresponding holds pin it).
			nr := &res.PerNode[node]
			if err != nil {
				nr.Errors++
			} else {
				nr.Executed++
				nr.Digest = nr.Digest*1099511628211 + ret + 1
			}
			if sc.OnExecuted != nil {
				sc.OnExecuted(node, ret, err)
			}
			pp := r.plans[r.phase]
			if node == pp.swapNode && !pp.swapFired && nr.Executed >= pp.swapTrigger {
				pp.swapFired = true
				r.performSwap(pp.swapNode, pp.swapApp)
				if r.swapHold {
					r.swapHold = false
					r.sys.ReleaseSerial()
				}
			}
			r.executedAll.Add(1)
			r.phaseExec[r.phase].Add(1)
			r.advance()
		}
	}

	r.phase = 0
	if r.sharded && len(specs) > 1 {
		// The phase barrier is a zero-lookahead global action: hold the
		// engine serial until the final phase opens.
		r.phasesHold = true
		sys.HoldSerial()
	}
	r.openPhase()
	// Chain straight through leading zero-traffic phases (e.g. a
	// swap-only opener): nothing will execute to advance past them.
	r.advance()
	sys.Run()
	sys.Mesh().OnChannelCreated = nil
	for i := range specs {
		res.Phases[i].Executed = int(r.phaseExec[i].Load())
	}
	if r.issueErr != nil {
		return nil, r.issueErr
	}
	if r.swapErr != nil {
		return nil, r.swapErr
	}
	res.Phases[r.phase].End = sim.Duration(sys.Now())

	for _, nr := range res.PerNode {
		res.Injections += nr.Executed
		res.Digest += nr.Digest // order-insensitive across nodes
	}
	res.Lost = int(r.lost.Load())
	res.SimTime = sim.Duration(sys.Now())
	res.Windows = sys.Windows()
	if secs := res.SimTime.Seconds(); secs > 0 {
		res.RatePerSec = float64(res.Injections) / secs
	}
	res.Mesh = sys.Stats()

	var errSum int
	for _, nr := range res.PerNode {
		errSum += nr.Errors
	}
	if res.Injections+errSum+res.Lost != total {
		return res, fmt.Errorf("workload: %s executed %d+%d (+%d lost) of %d planned messages",
			sc.Pattern, res.Injections, errSum, res.Lost, total)
	}
	return res, nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]*core.Package) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
