// Package workload is the scenario driver: it provisions a sharded
// many-node tc.System, generates a deterministic traffic plan for one of
// several patterns, drives batched frame injection through pre-resolved
// tc.Func handles (one handle per sender and element, bound once per
// destination), and reports simulated injections/sec plus a run digest.
//
// Patterns:
//
//   - Fanout: node 0 broadcasts bursts to every other node, round-robin.
//   - AllToAll: every node bursts to every other node — the densest
//     channel mesh and the heaviest spine-uplink load.
//   - Hotspot: skewed traffic where most bursts target one hot node, with
//     a RIED hot-swap — a RIED is a relocatable interface distribution,
//     the shared library a process loads to set up interfaces and data
//     objects — performed on the hot node while traffic is in flight
//     (the paper's remote-linking dynamic-update path, exercised under
//     load).
//
// Each sender self-clocks: burst k+1 is issued from the completion of
// burst k, so the fabric runs loaded but bounded. All randomness (element
// choice, Indirect Put keys, hotspot target and skew) flows from a single
// sim RNG seeded by Scenario.Seed; two runs with equal scenarios produce
// bit-identical digests and simulated times.
package workload

import (
	"fmt"

	"twochains/internal/core"
	"twochains/internal/mailbox"
	"twochains/internal/sim"
	"twochains/internal/tc"
)

// Pattern names a traffic shape.
type Pattern string

// The three built-in traffic patterns.
const (
	Fanout   Pattern = "fanout"
	AllToAll Pattern = "alltoall"
	Hotspot  Pattern = "hotspot"
)

// Patterns lists every built-in pattern in canonical order.
func Patterns() []Pattern { return []Pattern{Fanout, AllToAll, Hotspot} }

// ElementMix is one entry of a scenario's traffic mix: a tcbench element
// with a selection weight, sent either as an Injected Function (code
// travels) or a Local Function (IDs travel).
type ElementMix struct {
	Elem   string
	Weight int
	Local  bool
}

// Scenario parameterizes one workload run.
type Scenario struct {
	Pattern Pattern
	// Nodes is the mesh size; Shards the fabric-shard count (0 = default).
	Nodes, Shards int
	// Burst is the messages per batched injection; Rounds the bursts each
	// sender issues per destination slot of the pattern.
	Burst, Rounds int
	PayloadBytes  int
	// Mix is the element mix; empty selects the default mixed workload.
	Mix  []ElementMix
	Seed uint64
	// Timing enables the cache/CPU cost model (required for meaningful
	// rates; functional tests turn it off for speed).
	Timing bool
	// HotSkew is the probability a hotspot burst targets the hot node
	// (0 = default 0.8). Ignored by other patterns.
	HotSkew float64
	// DisableSwap turns off the hotspot mid-run RIED hot-swap.
	DisableSwap bool
	// Backend selects the fabric transport ("" = default "simnet").
	Backend string

	// OnExecuted observes every handler execution (node index, return
	// value, error) — the hook equivalence tests use to compare injected
	// execution against a native oracle.
	OnExecuted func(node int, ret uint64, err error)
}

// DefaultScenario returns a ready-to-run scenario of the given pattern.
func DefaultScenario(p Pattern, nodes int) Scenario {
	return Scenario{
		Pattern:      p,
		Nodes:        nodes,
		Burst:        8,
		Rounds:       3,
		PayloadBytes: 64,
		Seed:         0x7c2c2021,
		Timing:       true,
	}
}

// DefaultMix is the standard mixed workload: mostly injected code, some
// Local Function traffic.
func DefaultMix() []ElementMix {
	return []ElementMix{
		{Elem: "jam_sssum", Weight: 3},
		{Elem: "jam_iput", Weight: 2},
		{Elem: "jam_sssum", Weight: 1, Local: true},
	}
}

// NodeResult is one node's view of the run.
type NodeResult struct {
	// Sent is the number of messages the plan addressed to this node;
	// Executed the handlers that ran; Errors the handler failures.
	Sent     int
	Executed int
	Errors   int
	// Digest folds this node's return values in execution order.
	Digest uint64
}

// Result reports one scenario run.
type Result struct {
	Scenario   Scenario
	Shards     int          // fabric shards actually used
	Injections int          // handlers executed fabric-wide
	SimTime    sim.Duration // simulated wall time of the whole run
	RatePerSec float64      // simulated injections per simulated second
	Digest     uint64       // order-insensitive fold of per-node digests
	PerNode    []NodeResult
	Mesh       core.MeshStats
	Swapped    bool // hotspot: the mid-run RIED hot-swap fired
	HotNode    int  // hotspot: the skew target (-1 otherwise)
}

// burst is one planned batched send.
type burst struct {
	dst   int
	mix   ElementMix
	args  [][2]uint64
	local bool
}

// plan is the deterministic, pre-generated traffic schedule: one burst
// queue per sender.
type plan struct {
	bursts  [][]burst // indexed by sender
	sent    []int     // messages addressed per destination
	total   int
	hotNode int
}

// buildPlan consumes the RNG in a fixed order (senders ascending, rounds
// ascending) so the schedule is a pure function of the scenario. mix and
// wsum are the validated element mix and its total weight from Run.
func buildPlan(sc Scenario, mix []ElementMix, wsum int, rng *sim.RNG) plan {
	p := plan{
		bursts:  make([][]burst, sc.Nodes),
		sent:    make([]int, sc.Nodes),
		hotNode: -1,
	}
	pickMix := func() ElementMix {
		w := rng.Intn(wsum)
		for _, m := range mix {
			w -= m.Weight
			if w < 0 {
				return m
			}
		}
		return mix[len(mix)-1]
	}
	mkArgs := func() [][2]uint64 {
		args := make([][2]uint64, sc.Burst)
		for i := range args {
			args[i] = [2]uint64{rng.Uint64()%30000 + 1, 0}
		}
		return args
	}
	add := func(src, dst int) {
		m := pickMix()
		p.bursts[src] = append(p.bursts[src], burst{dst: dst, mix: m, args: mkArgs(), local: m.Local})
		p.sent[dst] += sc.Burst
		p.total += sc.Burst
	}

	switch sc.Pattern {
	case Fanout:
		for r := 0; r < sc.Rounds; r++ {
			for dst := 1; dst < sc.Nodes; dst++ {
				add(0, dst)
			}
		}
	case AllToAll:
		for src := 0; src < sc.Nodes; src++ {
			for r := 0; r < sc.Rounds; r++ {
				for dst := 0; dst < sc.Nodes; dst++ {
					if dst != src {
						add(src, dst)
					}
				}
			}
		}
	case Hotspot:
		skew := sc.HotSkew
		if skew <= 0 {
			skew = 0.8
		}
		p.hotNode = rng.Intn(sc.Nodes)
		for src := 0; src < sc.Nodes; src++ {
			if src == p.hotNode {
				continue
			}
			for r := 0; r < sc.Rounds*(sc.Nodes-1); r++ {
				dst := p.hotNode
				// Background traffic needs a node that is neither the
				// sender nor the hot node; with 2 nodes none exists and
				// every burst goes hot.
				if sc.Nodes > 2 && !rng.Bernoulli(skew) {
					for {
						dst = rng.Intn(sc.Nodes)
						if dst != src && dst != p.hotNode {
							break
						}
					}
				}
				add(src, dst)
			}
		}
	}
	return p
}

// frameSizeFor sizes the shared mailbox geometry to the largest message of
// the mix.
func frameSizeFor(pkg *core.Package, mix []ElementMix, payload int) (int, error) {
	max := 0
	for _, m := range mix {
		var msg *mailbox.Message
		if m.Local {
			msg = mailbox.PackLocal(1, 1, [2]uint64{}, make([]byte, payload))
		} else {
			elem, ok := pkg.Element(m.Elem)
			if !ok || elem.Kind != core.ElemJam {
				return 0, fmt.Errorf("workload: no jam %q in bench package", m.Elem)
			}
			msg = &mailbox.Message{
				Kind:     mailbox.KindInjected,
				JamImage: make([]byte, elem.Jam.ShippedSize()),
				Usr:      make([]byte, payload),
			}
		}
		if n := msg.WireLen(); n > max {
			max = n
		}
	}
	return max, nil
}

// Run executes the scenario and reports the result. The run is fully
// deterministic: equal scenarios produce equal results.
func Run(sc Scenario) (*Result, error) {
	if sc.Nodes < 2 {
		return nil, fmt.Errorf("workload: scenario needs >= 2 nodes")
	}
	if sc.Burst < 1 || sc.Rounds < 1 {
		return nil, fmt.Errorf("workload: burst and rounds must be >= 1")
	}
	if sc.Pattern != Fanout && sc.Pattern != AllToAll && sc.Pattern != Hotspot {
		return nil, fmt.Errorf("workload: unknown pattern %q", sc.Pattern)
	}
	mix := sc.Mix
	if len(mix) == 0 {
		mix = DefaultMix()
	}
	wsum := 0
	for _, m := range mix {
		if m.Weight < 0 {
			return nil, fmt.Errorf("workload: element %q has negative weight %d", m.Elem, m.Weight)
		}
		wsum += m.Weight
	}
	if wsum <= 0 {
		return nil, fmt.Errorf("workload: element mix has no positive weight")
	}

	pkg, err := core.BuildBenchPackage()
	if err != nil {
		return nil, err
	}
	frame, err := frameSizeFor(pkg, mix, sc.PayloadBytes)
	if err != nil {
		return nil, err
	}

	opts := []tc.SystemOpt{
		tc.WithSeed(sc.Seed),
		tc.WithTiming(sc.Timing),
		tc.WithBackend(sc.Backend),
		tc.WithConfig(func(c *core.MeshConfig) { c.Geometry.FrameSize = frame }),
	}
	if sc.Shards > 0 {
		opts = append(opts, tc.WithShards(sc.Shards))
	}
	sys, err := tc.NewSystem(sc.Nodes, opts...)
	if err != nil {
		return nil, err
	}
	if err := sys.InstallPackage(pkg); err != nil {
		return nil, err
	}

	p := buildPlan(sc, mix, wsum, sys.RNG())
	res := &Result{
		Scenario: sc,
		Shards:   sys.Mesh().Cfg.Shards, // post-clamp value actually used
		PerNode:  make([]NodeResult, sc.Nodes),
		HotNode:  p.hotNode,
	}
	for i := range res.PerNode {
		res.PerNode[i].Sent = p.sent[i]
	}

	// Hot-swap trigger: once the hot node has executed half its planned
	// traffic, install a fresh copy of the server RIED (rebinding
	// tc_results/tc_table/tc_heap to new state) and re-run the namespace
	// exchange on every channel into it — the remote-linking dynamic
	// update, performed while bursts are still in flight. In-flight Func
	// handles re-bind automatically on their next call.
	swapAt := -1
	var swapImg = func() error { return nil }
	if sc.Pattern == Hotspot && !sc.DisableSwap && p.hotNode >= 0 {
		swapAt = p.sent[p.hotNode] / 2
		swapImg = func() error {
			spkg, err := core.BuildPackage("kvbench-swap", map[string]string{
				"ried_kvbench.rds": core.RiedKVBenchSrc,
			})
			if err != nil {
				return err
			}
			for _, e := range spkg.Elements {
				if e.Kind != core.ElemRied {
					continue
				}
				if _, err := sys.InstallRied(p.hotNode, e.Ried, true); err != nil {
					return err
				}
			}
			sys.RefreshNames(p.hotNode)
			return nil
		}
	}

	var swapErr error
	payload := make([]byte, sc.PayloadBytes)
	for i := range payload {
		payload[i] = byte(i*31 + 7)
	}
	for i := 0; i < sc.Nodes; i++ {
		node := i
		sys.Node(i).OnExecuted = func(ret uint64, _ sim.Duration, err error) {
			nr := &res.PerNode[node]
			if err != nil {
				nr.Errors++
			} else {
				nr.Executed++
				nr.Digest = nr.Digest*1099511628211 + ret + 1
			}
			if sc.OnExecuted != nil {
				sc.OnExecuted(node, ret, err)
			}
			if node == p.hotNode && !res.Swapped && swapAt >= 0 && nr.Executed >= swapAt {
				res.Swapped = true
				if err := swapImg(); err != nil && swapErr == nil {
					swapErr = err
				}
			}
		}
	}

	// Self-clocked issue: each sender fires its next burst when the last
	// message of the previous one completes delivery. Handles are
	// resolved once per sender and element and reused for every burst —
	// the bind-once/call-many idiom.
	var issueErr error
	fns := make([]map[string]*tc.Func, sc.Nodes)
	fnFor := func(src int, elem string) (*tc.Func, error) {
		if fns[src] == nil {
			fns[src] = map[string]*tc.Func{}
		}
		if f, ok := fns[src][elem]; ok {
			return f, nil
		}
		f, err := sys.Func(src, "tcbench", elem)
		if err != nil {
			return nil, err
		}
		fns[src][elem] = f
		return f, nil
	}
	for src := 0; src < sc.Nodes; src++ {
		queue := p.bursts[src]
		if len(queue) == 0 {
			continue
		}
		s := src
		next := 0
		var fire func()
		// One completion callback per sender, not per burst: fire is the
		// self-clock, onDone re-arms it.
		onDone := func(tc.Result) { fire() }
		payloadOpt := tc.Payload(payload)
		localOpt := tc.Local()
		optScratch := make([]tc.CallOpt, 0, 3)
		fire = func() {
			if next >= len(queue) || issueErr != nil {
				return
			}
			b := queue[next]
			next++
			fn, err := fnFor(s, b.mix.Elem)
			if err != nil {
				issueErr = err
				return
			}
			callOpts := append(optScratch[:0], tc.Burst(b.args), payloadOpt)
			if b.local {
				callOpts = append(callOpts, localOpt)
			}
			fu := fn.Call(b.dst, b.args[0], callOpts...)
			if err := fu.IssueErr(); err != nil {
				// Synchronous issue failure (bad element, torn-down
				// destination): stop the sender, like the legacy path.
				issueErr = err
				return
			}
			fu.Done(onDone)
			// The future is not touched after its Done callback: hand it
			// back to the pool so self-clocked senders recycle one future
			// per in-flight burst instead of allocating per burst.
			fu.Release()
		}
		sys.Engine().After(0, fire)
	}
	sys.Run()
	if issueErr != nil {
		return nil, issueErr
	}
	if swapErr != nil {
		return nil, swapErr
	}

	for _, nr := range res.PerNode {
		res.Injections += nr.Executed
		res.Digest += nr.Digest // order-insensitive across nodes
	}
	res.SimTime = sim.Duration(sys.Now())
	if secs := res.SimTime.Seconds(); secs > 0 {
		res.RatePerSec = float64(res.Injections) / secs
	}
	res.Mesh = sys.Stats()

	var errSum int
	for _, nr := range res.PerNode {
		errSum += nr.Errors
	}
	if res.Injections+errSum != p.total {
		return res, fmt.Errorf("workload: %s executed %d+%d of %d planned messages",
			sc.Pattern, res.Injections, errSum, p.total)
	}
	return res, nil
}
