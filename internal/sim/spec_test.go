package sim

import (
	"strings"
	"testing"
)

// TestEngineSpeculationRollback pins the snapshot/rollback contract:
// rolling back restores the clock, the counters, and exactly the
// pre-snapshot schedule — events executed during the speculated stretch
// come back, events scheduled during it vanish.
func TestEngineSpeculationRollback(t *testing.T) {
	e := NewEngine()
	var ran []int
	e.At(10, func() { ran = append(ran, 10) })
	e.At(20, func() {
		ran = append(ran, 20)
		e.After(5, func() { ran = append(ran, 25) })
	})
	e.At(30, func() { ran = append(ran, 30) })
	e.RunBefore(20)
	wantSeq, wantSteps := e.seq, e.nSteps
	e.BeginSpeculation()
	if !e.Speculating() {
		t.Fatal("Speculating() false after BeginSpeculation")
	}
	e.RunBefore(40) // speculatively runs 20, 25, 30
	if len(ran) != 4 {
		t.Fatalf("speculated %d events, want 4 (ran %v)", len(ran)-1, ran)
	}
	e.RollbackSpeculation()
	if e.Speculating() {
		t.Fatal("Speculating() true after rollback")
	}
	if e.Now() != 10 {
		t.Fatalf("clock %d after rollback, want 10", e.Now())
	}
	if e.seq != wantSeq || e.nSteps != wantSteps {
		t.Fatalf("counters (%d, %d) after rollback, want (%d, %d)", e.seq, e.nSteps, wantSeq, wantSteps)
	}
	// The event scheduled during speculation (at 25) must be gone; the two
	// pre-snapshot events (20, 30) must be back.
	if e.Pending() != 2 {
		t.Fatalf("%d pending after rollback, want 2", e.Pending())
	}
	ran = ran[:0]
	e.Run()
	want := []int{20, 25, 30}
	if len(ran) != len(want) {
		t.Fatalf("replay ran %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("replay ran %v, want %v", ran, want)
		}
	}
}

// TestEngineSpeculationCommit pins that a committed speculation leaves the
// engine exactly where plain execution would have.
func TestEngineSpeculationCommit(t *testing.T) {
	run := func(spec bool) (trace []int, now Time, steps uint64) {
		e := NewEngine()
		for _, at := range []Time{5, 15, 25} {
			at := at
			e.At(at, func() {
				trace = append(trace, int(at))
				e.After(3, func() { trace = append(trace, int(at)+3) })
			})
		}
		e.RunBefore(10)
		if spec {
			e.BeginSpeculation()
		}
		e.RunBefore(30)
		if spec {
			e.CommitSpeculation()
		}
		e.Run()
		return trace, e.Now(), e.nSteps
	}
	pt, pn, ps := run(false)
	st, sn, ss := run(true)
	if pn != sn || ps != ss || len(pt) != len(st) {
		t.Fatalf("committed speculation diverged: now %d/%d steps %d/%d", sn, pn, ss, ps)
	}
	for i := range pt {
		if pt[i] != st[i] {
			t.Fatalf("trace[%d] = %d, want %d", i, st[i], pt[i])
		}
	}
}

// specToy drives the toy hop model of TestGroupToyDeterminism with a
// speculation budget; traces must be identical for every (workers,
// budget) combination.
func specToy(t *testing.T, workers int, budget Duration) (trace []int64, final Time, windows uint64) {
	t.Helper()
	const shards = 4
	const look = Duration(100)
	g := NewGroup(shards, workers, look)
	if budget > 0 {
		g.SetSpeculation(budget)
	}
	mu := make([][]int64, shards)
	var hop func(s int, depth int, at Time)
	hop = func(s int, depth int, at Time) {
		mu[s] = append(mu[s], int64(at)*31+int64(s))
		if depth == 0 {
			return
		}
		g.Engine(s).After(Duration(3+depth%7), func() {
			mu[s] = append(mu[s], int64(depth))
		})
		d := (s + 1) % shards
		nextAt := g.Engine(s).Now().Add(look + Duration(depth%13))
		g.Handoff(s, d, nextAt, func() { hop(d, depth-1, nextAt) })
	}
	for s := 0; s < shards; s++ {
		s := s
		// Staggered roots make the schedule asymmetric, so the
		// reachability bound actually exceeds the horizon for the leader.
		g.Engine(s).At(Time(1+s*40), func() { hop(s, 50, Time(1+s*40)) })
	}
	g.Run()
	for s := 0; s < shards; s++ {
		trace = append(trace, mu[s]...)
	}
	return trace, g.Now(), g.Windows()
}

// TestGroupSpeculativeDeterminism checks that speculative windows change
// nothing observable: every worker count and budget produces the
// sequential trace, bit for bit.
func TestGroupSpeculativeDeterminism(t *testing.T) {
	baseTrace, baseNow, _ := specToy(t, 1, 0)
	for _, w := range []int{1, 2, 4} {
		for _, b := range []Duration{0, 30, 250} {
			tr, now, _ := specToy(t, w, b)
			if now != baseNow {
				t.Fatalf("workers=%d budget=%d: final time %d, want %d", w, b, now, baseNow)
			}
			if len(tr) != len(baseTrace) {
				t.Fatalf("workers=%d budget=%d: trace length %d, want %d", w, b, len(tr), len(baseTrace))
			}
			for i := range tr {
				if tr[i] != baseTrace[i] {
					t.Fatalf("workers=%d budget=%d: trace[%d] = %d, want %d", w, b, i, tr[i], baseTrace[i])
				}
			}
		}
	}
}

// TestGroupWindowsEngage pins the engagement metric: a hold-free run on a
// multi-worker group must execute parallel windows, and the serial-hold
// regime must not count any.
func TestGroupWindowsEngage(t *testing.T) {
	_, _, windows := specToy(t, 2, 0)
	if windows == 0 {
		t.Fatal("hold-free run executed zero parallel windows")
	}
	g := NewGroup(2, 2, 50)
	g.HoldSerial()
	g.Engine(0).At(10, func() {})
	g.Engine(1).At(20, func() {})
	g.Run()
	if g.Windows() != 0 {
		t.Fatalf("serial-hold run counted %d windows, want 0", g.Windows())
	}
}

// TestGroupSpeculationViolationRollsBack pins the contract guard: a
// backend hand-off violating the lookahead lands inside a speculated
// range, and the group must roll the destination engine back to the
// snapshot and panic with a diagnostic.
func TestGroupSpeculationViolationRollsBack(t *testing.T) {
	const look = Duration(100)
	g := NewGroup(2, 2, look)
	g.SetSpeculation(500)
	e0 := g.Engine(0)
	// Shard 0: dense local work so its speculative bound is used.
	for at := Time(0); at <= 200; at += 10 {
		e0.At(at, func() {})
	}
	// Shard 1 wakes at 50 and emits a hand-off arriving at 60 — far below
	// the 100-tick lookahead it promised.
	g.Engine(1).At(50, func() { g.Handoff(1, 0, 60, func() {}) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "lookahead contract violated") {
			t.Fatalf("panic %v, want a lookahead-contract diagnostic", r)
		}
		// next_0=0, next_1=50: t_1 = min(50, 100) = 50, so shard 0's bound
		// is t_1+look = 150 while the horizon is 100. The rollback must
		// land shard 0 back on its last conservative event (90).
		if e0.Speculating() {
			t.Fatal("engine still speculating after rollback")
		}
		if e0.Now() >= 100 {
			t.Fatalf("engine clock %d after rollback, want < horizon 100", e0.Now())
		}
	}()
	g.Run()
}
