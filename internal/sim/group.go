package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Group is the multi-core conservative simulation engine: one Engine per
// fabric shard, each advanced by a worker goroutine, synchronized so that
// digests and simulated times are bit-identical to running everything on
// a single engine.
//
// # Execution model
//
// The group alternates between two regimes.
//
// Serial regime: while any serial hold is armed (HoldSerial), the
// coordinator executes one globally-earliest event at a time, picked by
// (at, seq) across every shard's heap. All engines draw sequence numbers
// from one shared counter while serial, so the tie-break order is exactly
// the order a single engine would have produced — serial execution is
// bit-exact by construction, not by argument. Model layers arm holds
// around zero-lookahead global actions (lazy channel setup, RIED
// hot-swaps, scenario phase barriers) that conservative parallelism
// cannot reorder safely.
//
// Windowed regime: with no holds armed, the coordinator computes the
// horizon H = min(next event time over all shards) + lookahead and wakes
// the workers; each shard executes its local events with time < H
// concurrently. The lookahead is the backend's minimum cross-shard
// latency, so any cross-shard effect produced inside a window lands at or
// beyond H and is exchanged at the barrier: per-pair hand-off queues are
// single-writer during the window and drained by the coordinator, which
// merges each destination's arrivals in (at, issueAt, srcShard, order)
// order — the same order a single engine's scheduling would have given
// them — before the next round.
//
// Holds only ever release (the sensitive prefix of a run is serial, the
// steady state parallel); the serial->windowed transition detaches the
// shared sequence counter once, keeping per-shard counters monotone.
type Group struct {
	engines   []*Engine
	lookahead Duration
	workers   int

	seq      uint64 // shared scheduling counter while attached
	attached bool
	holds    int

	// windowed is true only between a window wake and its barrier. It is
	// written by the coordinator before the round release and read by
	// workers after observing the round counter, so the atomics below
	// order every access.
	windowed bool

	// queues[src][dst] is the cross-shard hand-off lane: appended to only
	// by src's worker during a window, drained only by the coordinator at
	// the barrier.
	queues [][][]handoff
	merge  []handoff // coordinator scratch for per-destination merging

	// Worker machinery: workers spin on round (with Gosched) waiting for
	// the next window, run their shards to horizon, then bump done.
	round   atomic.Uint64
	horizon atomic.Int64
	done    atomic.Int64
	acks    atomic.Int64
	quit    atomic.Bool
	running bool
	failed  bool
	assign  [][]int // worker index -> owned shard indices
	failure atomic.Pointer[panicValue]
}

// handoff is one cross-shard event in flight between a window and its
// barrier. issueAt (the source shard's clock when the event was issued)
// is the first tie-break for equal arrival times: an event issued at an
// earlier simulated time was scheduled earlier on a single engine.
type handoff struct {
	at       Time
	issueAt  Time
	pSchedAt Time
	src      int
	fn       func()
}

type panicValue struct{ v any }

// NewGroup builds a conservative parallel engine over n shard engines.
// lookahead must be a lower bound on the latency of every cross-shard
// interaction; workers is clamped to [1, n].
func NewGroup(n, workers int, lookahead Duration) *Group {
	if n < 1 {
		panic("sim: group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: group needs a positive cross-shard lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	g := &Group{
		engines:   make([]*Engine, n),
		lookahead: lookahead,
		workers:   workers,
		attached:  true,
		queues:    make([][][]handoff, n),
	}
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.engines[i].shardID = uint32(i)
		g.engines[i].attachSeq(&g.seq)
		g.queues[i] = make([][]handoff, n)
	}
	g.assign = make([][]int, workers)
	for s := 0; s < n; s++ {
		w := s % workers
		g.assign[w] = append(g.assign[w], s)
	}
	return g
}

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Workers returns the worker goroutine count windows run on.
func (g *Group) Workers() int { return g.workers }

// Lookahead returns the conservative cross-shard window.
func (g *Group) Lookahead() Duration { return g.lookahead }

// Engine returns shard i's engine. Scheduling directly on it is legal
// from setup code and from events already running on that shard; all
// cross-shard scheduling must go through Handoff.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Now returns the global clock: the time of the latest executed event
// across all shards.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Pending reports the total number of queued events.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Steps returns the number of events executed group-wide.
func (g *Group) Steps() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.nSteps
	}
	return n
}

// HoldSerial arms (one more) serial hold: until every hold is released
// the group executes one globally-ordered event at a time. Calling it is
// only legal before Run or from within an event executing serially —
// holds gate parallelism on, never interrupt it.
func (g *Group) HoldSerial() { g.holds++ }

// ReleaseSerial releases one serial hold.
func (g *Group) ReleaseSerial() {
	if g.holds <= 0 {
		panic("sim: ReleaseSerial without a matching HoldSerial")
	}
	g.holds--
}

// SerialHolds reports the number of armed holds.
func (g *Group) SerialHolds() int { return g.holds }

// Handoff schedules fn at time at on shard dst on behalf of shard src.
// Outside a window it schedules directly (coordinator context, globally
// ordered); inside a window it enqueues on the src->dst hand-off lane for
// the barrier merge. at must be at least the issuing shard's current time
// plus the group's lookahead when called from a window.
func (g *Group) Handoff(src, dst int, at Time, fn func()) {
	se := g.engines[src]
	if !g.windowed {
		// Serial regime (or setup): schedule directly, stamped with the
		// issuing shard's clock — the global current time, since serial
		// execution only ever advances the executing shard.
		g.engines[dst].atFrom(at, se.now, se.curSchedAt, uint32(src), fn)
		return
	}
	g.queues[src][dst] = append(g.queues[src][dst],
		handoff{at: at, issueAt: se.now, pSchedAt: se.curSchedAt, src: src, fn: fn})
}

// Step executes the single globally-earliest pending event, serially.
// It reports whether an event was executed. Between runs (and in tests)
// it is the deterministic single-step primitive; Run uses it for every
// serial-regime event.
//
// Head events are compared by the same (at, schedAt, pSchedAt, ...)
// order the per-shard heaps use. While the shared counter is attached
// (the serial regime proper) sequence numbers are globally unique and
// decide every remaining tie exactly as a single engine would; after
// detach (Await-style stepping of an already-windowed group) seqs from
// different shards are only comparable for serial-era events, so the
// lineage stamps and the shard index break cross-shard ties instead.
func (g *Group) Step() bool {
	best := -1
	var bh event
	for i, e := range g.engines {
		h, ok := e.peekHead()
		if !ok {
			continue
		}
		if best < 0 || headLess(&h, i, &bh, best, g) {
			best, bh = i, h
		}
	}
	if best < 0 {
		return false
	}
	g.engines[best].Step()
	return true
}

// headLess orders two engines' head events globally (see Step).
func headLess(a *event, ai int, b *event, bi int, g *Group) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.pSchedAt != b.pSchedAt {
		return a.pSchedAt < b.pSchedAt
	}
	aSerial := a.seq <= g.engines[ai].serialMax
	bSerial := b.seq <= g.engines[bi].serialMax
	if aSerial && bSerial {
		// Shared-counter era: seq is the exact global scheduling order.
		return a.seq < b.seq
	}
	if aSerial != bSerial {
		// Mixed eras: everything serial-scheduled precedes window-era
		// scheduling at the same instant.
		return aSerial
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if ai != bi {
		return ai < bi
	}
	return a.seq < b.seq
}

// Run executes events until the group is quiescent, honoring serial
// holds and running hold-free stretches as parallel windows.
func (g *Group) Run() { g.run(maxTime) }

// RunUntil executes events with time <= deadline, then advances every
// idle shard clock to the deadline (single-engine RunUntil semantics).
func (g *Group) RunUntil(deadline Time) {
	g.run(deadline)
	for _, e := range g.engines {
		e.AdvanceTo(deadline)
	}
}

// RunFor executes events for d of simulated time from the global clock.
func (g *Group) RunFor(d Duration) { g.RunUntil(g.Now().Add(d)) }

const maxTime = Time(1<<63 - 1)

func (g *Group) run(deadline Time) {
	defer g.stopWorkers()
	for {
		minAt, ok := g.minNext()
		if !ok || minAt > deadline {
			return
		}
		if g.holds > 0 {
			g.Step()
			continue
		}
		// Hold-free: run a parallel window. The first window permanently
		// detaches the shared sequence counter (holds only ever release,
		// so the group never returns to the attached serial regime).
		g.detach()
		h := minAt.Add(g.lookahead)
		if deadline != maxTime && h > deadline {
			// Cap at the deadline but keep RunUntil's inclusive bound.
			h = deadline + 1
		}
		g.window(h)
	}
}

func (g *Group) detach() {
	if !g.attached {
		return
	}
	g.attached = false
	for _, e := range g.engines {
		e.detachSeq()
	}
}

// minNext returns the earliest pending event time across shards.
func (g *Group) minNext() (Time, bool) {
	best := false
	var bAt Time
	for _, e := range g.engines {
		if at, _, ok := e.Peek(); ok && (!best || at < bAt) {
			best, bAt = true, at
		}
	}
	return bAt, best
}

// window runs one parallel round to horizon h and merges the hand-offs.
func (g *Group) window(h Time) {
	if g.workers <= 1 {
		// Degenerate group: same windowed semantics on the caller's
		// goroutine (exercised by tests; production single-worker setups
		// collapse to a plain Engine upstream).
		g.windowed = true
		for _, e := range g.engines {
			e.RunBefore(h)
		}
		g.windowed = false
		g.mergeHandoffs()
		return
	}
	g.startWorkers()
	g.windowed = true
	g.done.Store(0)
	g.horizon.Store(int64(h))
	g.round.Add(1) // release: workers observe horizon and windowed
	for g.done.Load() < int64(g.workers) {
		runtime.Gosched()
	}
	g.windowed = false
	if p := g.failure.Load(); p != nil {
		g.failed = true
		panic(p.v)
	}
	g.mergeHandoffs()
}

// mergeHandoffs drains every cross-shard lane and inserts each
// destination's arrivals in deterministic order: collected src-major (so
// a stable sort by (at, issueAt) leaves equal keys in (src, enqueue)
// order), which reproduces the scheduling order of a single engine —
// earlier issue first, then source node order, which shard blocks and
// per-shard enqueue order are aligned with.
func (g *Group) mergeHandoffs() {
	for dst := range g.engines {
		batch := g.merge[:0]
		for src := range g.engines {
			q := g.queues[src][dst]
			if len(q) == 0 {
				continue
			}
			batch = append(batch, q...)
			for i := range q {
				q[i] = handoff{}
			}
			g.queues[src][dst] = q[:0]
		}
		if len(batch) == 0 {
			g.merge = batch
			continue
		}
		insertionSortHandoffs(batch)
		for i := range batch {
			// Stamp the arrival with its issue time: the heap's
			// (at, schedAt, seq) order then slots it among the
			// destination's same-timestamp local events exactly where a
			// single engine's scheduling would have.
			g.engines[dst].atFrom(batch[i].at, batch[i].issueAt, batch[i].pSchedAt, uint32(batch[i].src), batch[i].fn)
			batch[i] = handoff{}
		}
		g.merge = batch[:0]
	}
}

// insertionSortHandoffs stable-sorts a barrier batch by (at, issueAt).
// Batches are small (one window's cross-shard traffic) and collected
// nearly sorted, where insertion sort beats the generic sort without
// allocating.
func insertionSortHandoffs(b []handoff) {
	for i := 1; i < len(b); i++ {
		h := b[i]
		j := i - 1
		for j >= 0 && (b[j].at > h.at || (b[j].at == h.at &&
			(b[j].issueAt > h.issueAt || (b[j].issueAt == h.issueAt && b[j].pSchedAt > h.pSchedAt)))) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = h
	}
}

// startWorkers spawns the window workers on first use within a run.
func (g *Group) startWorkers() {
	if g.running {
		return
	}
	g.running = true
	g.quit.Store(false)
	g.round.Store(0)
	base := g.round.Load()
	for w := 0; w < g.workers; w++ {
		go g.worker(g.assign[w], base)
	}
}

// stopWorkers retires the worker goroutines at the end of a run, so an
// idle Group pins no spinning goroutines between runs.
func (g *Group) stopWorkers() {
	if !g.running {
		return
	}
	g.quit.Store(true)
	g.round.Add(1)
	// Wait for every worker to acknowledge, so a subsequent run's workers
	// never race a retiring generation.
	for g.acks.Load() < int64(g.workers) {
		runtime.Gosched()
	}
	g.running = false
	g.acks.Store(0)
	g.done.Store(0)
	if p := g.failure.Load(); p != nil && !g.failed {
		g.failed = true
		panic(p.v)
	}
}

// worker is one window executor: it spins (politely) for the next round,
// runs its shards to the horizon, and reports. A model panic inside an
// event is captured and rethrown on the coordinator.
func (g *Group) worker(shards []int, last uint64) {
	for {
		for g.round.Load() == last {
			runtime.Gosched()
		}
		last = g.round.Load()
		if g.quit.Load() {
			g.acks.Add(1)
			return
		}
		h := Time(g.horizon.Load())
		func() {
			defer func() {
				if r := recover(); r != nil {
					g.failure.CompareAndSwap(nil, &panicValue{v: fmt.Errorf("sim: worker shard panic: %v", r)})
				}
			}()
			for _, s := range shards {
				g.engines[s].RunBefore(h)
			}
		}()
		g.done.Add(1)
	}
}
