package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Group is the multi-core conservative simulation engine: one Engine per
// fabric shard, advanced by core-pinned worker goroutines, synchronized so
// that digests and simulated times are bit-identical to running everything
// on a single engine.
//
// # Execution model
//
// The group alternates between two regimes.
//
// Serial regime: while any serial hold is armed (HoldSerial), the
// coordinator executes one globally-earliest event at a time, picked by
// (at, seq) across every shard's heap. All engines draw sequence numbers
// from one shared counter while serial, so the tie-break order is exactly
// the order a single engine would have produced — serial execution is
// bit-exact by construction, not by argument. Model layers arm holds
// around zero-lookahead global actions (lazy channel setup, RIED
// hot-swaps, scenario phase barriers) that conservative parallelism
// cannot reorder safely.
//
// Windowed regime: with no holds armed, the coordinator computes the
// horizon H = min(next event time over all shards) + lookahead and wakes
// the workers; each shard executes its local events with time < H
// concurrently. The lookahead is the backend's minimum cross-shard
// latency, so any cross-shard effect produced inside a window lands at or
// beyond H and is exchanged at the barrier: per-pair hand-off queues are
// single-writer during the window and drained by the coordinator, which
// merges each destination's arrivals in (at, issueAt, srcShard, order)
// order — the same order a single engine's scheduling would have given
// them — before the next round.
//
// The coordinator is itself an executor: it owns the first shard block
// (assign[0]) and runs it inline between releasing a window and waiting at
// the barrier, so only workers-1 goroutines are spawned and no core burns
// in a pure wait loop. Barrier waits on both sides are hybrid: a bounded
// polite spin (runtime.Gosched) for the common fast hand-off, then a
// sync.Cond park so oversubscribed hosts (workers ≥ cores) stop paying a
// spinning core per shard. Spawned workers lock their OS thread for the
// duration of a run, pinning each shard block to one kernel thread.
//
// Speculative windows (SetSpeculation): each shard s may run past H up to
// bound F_s = min(min_{i≠s} t_i + L, H + budget), where
// t_i = min(next_i, min_{j≠i} next_j + L) lower-bounds shard i's earliest
// future execution instant. Every execution on shard i happens at or
// after t_i (local events are at or after next_i; any arrival into i was
// issued by an execution elsewhere, which is at or after the global
// minimum, and arrives a lookahead later — at or after t_i). Hence every
// future arrival into s lands at or after min_{i≠s} t_i + L = F_s, and
// executing s strictly before F_s is as safe as the conservative horizon:
// under a correct backend nothing ever lands inside a speculated range.
// F_s ≥ H always, and is strictly greater exactly for asymmetric
// (lookahead-poor) schedules where one shard leads the pack — the leader
// gets up to one extra lookahead of headroom per window. Each engine
// snapshots its schedule before the speculative stretch; a merged arrival
// landing inside it means the backend broke its Lookahead contract, and
// the group rolls the schedule back for a coherent diagnostic before
// failing loudly.
//
// Holds only ever release (the sensitive prefix of a run is serial, the
// steady state parallel); the serial->windowed transition detaches the
// shared sequence counter once, keeping per-shard counters monotone.
type Group struct {
	engines   []*Engine
	lookahead Duration
	workers   int
	spec      Duration // speculation budget past the horizon (0 = off)

	seq      uint64 // shared scheduling counter while attached
	attached bool
	holds    int
	windows  uint64 // parallel windows executed (engagement metric)

	// windowed is true only between a window wake and its barrier. It is
	// written by the coordinator before the round release and read by
	// workers after observing the round counter, so the atomics below
	// order every access (as they do horizon and bounds).
	windowed bool
	horizon  Time   // current window's conservative horizon H
	bounds   []Time // per-shard window bound (== horizon unless speculating)
	next     []Time // coordinator scratch: per-shard head times
	tmin     []Time // coordinator scratch: per-shard earliest-execution bounds

	// queues[src][dst] is the cross-shard hand-off lane: appended to only
	// by src's executor during a window, drained only by the coordinator
	// at the barrier.
	queues [][][]handoff
	merge  []handoff // coordinator scratch for per-destination merging

	// Barrier machinery. The atomics are the fast path (bounded spin); pmu
	// with the two conds is the slow path. round releases a window to the
	// workers, done counts finished workers back in, acks counts quit
	// acknowledgements; wakeCond parks workers between windows, idleCond
	// parks the coordinator waiting for the fleet.
	round    atomic.Uint64
	done     atomic.Int64
	acks     atomic.Int64
	quit     atomic.Bool
	pmu      sync.Mutex
	wakeCond *sync.Cond
	idleCond *sync.Cond
	running  bool
	failed   bool
	assign   [][]int // executor index -> owned shards; executor 0 is the coordinator
	failure  atomic.Pointer[panicValue]
}

// handoff is one cross-shard event in flight between a window and its
// barrier. issueAt (the source shard's clock when the event was issued)
// is the first tie-break for equal arrival times: an event issued at an
// earlier simulated time was scheduled earlier on a single engine.
type handoff struct {
	at       Time
	issueAt  Time
	pSchedAt Time
	src      int
	fn       func()
}

type panicValue struct{ v any }

// NewGroup builds a conservative parallel engine over n shard engines.
// lookahead must be a lower bound on the latency of every cross-shard
// interaction; workers is clamped to [1, n].
func NewGroup(n, workers int, lookahead Duration) *Group {
	if n < 1 {
		panic("sim: group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: group needs a positive cross-shard lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	g := &Group{
		engines:   make([]*Engine, n),
		lookahead: lookahead,
		workers:   workers,
		attached:  true,
		queues:    make([][][]handoff, n),
		bounds:    make([]Time, n),
		next:      make([]Time, n),
		tmin:      make([]Time, n),
	}
	g.wakeCond = sync.NewCond(&g.pmu)
	g.idleCond = sync.NewCond(&g.pmu)
	for i := range g.engines {
		g.engines[i] = NewEngine()
		g.engines[i].shardID = uint32(i)
		g.engines[i].attachSeq(&g.seq)
		g.queues[i] = make([][]handoff, n)
	}
	g.assign = make([][]int, workers)
	for s := 0; s < n; s++ {
		w := s % workers
		g.assign[w] = append(g.assign[w], s)
	}
	return g
}

// Shards returns the number of shard engines.
func (g *Group) Shards() int { return len(g.engines) }

// Workers returns the executor count windows run on (the coordinator
// included — only workers-1 goroutines are spawned).
func (g *Group) Workers() int { return g.workers }

// Lookahead returns the conservative cross-shard window.
func (g *Group) Lookahead() Duration { return g.lookahead }

// SetSpeculation sets the speculation budget: how far past the
// conservative horizon a shard may run when the reachability bound allows
// it (see the type comment). Zero — the default — disables speculation;
// the budget must be set before Run and must not be negative.
func (g *Group) SetSpeculation(d Duration) {
	if d < 0 {
		panic("sim: negative speculation budget")
	}
	if g.running {
		panic("sim: SetSpeculation while windows are running")
	}
	g.spec = d
}

// Speculation returns the speculation budget (0 when disabled).
func (g *Group) Speculation() Duration { return g.spec }

// Windows reports how many parallel windows have executed — the
// engagement metric distinguishing the windowed regime from a run that
// silently degraded to serial stepping.
func (g *Group) Windows() uint64 { return g.windows }

// Engine returns shard i's engine. Scheduling directly on it is legal
// from setup code and from events already running on that shard; all
// cross-shard scheduling must go through Handoff.
func (g *Group) Engine(i int) *Engine { return g.engines[i] }

// Now returns the global clock: the time of the latest executed event
// across all shards.
func (g *Group) Now() Time {
	var t Time
	for _, e := range g.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Pending reports the total number of queued events.
func (g *Group) Pending() int {
	n := 0
	for _, e := range g.engines {
		n += e.Pending()
	}
	return n
}

// Steps returns the number of events executed group-wide.
func (g *Group) Steps() uint64 {
	var n uint64
	for _, e := range g.engines {
		n += e.nSteps
	}
	return n
}

// HoldSerial arms (one more) serial hold: until every hold is released
// the group executes one globally-ordered event at a time. Calling it is
// only legal before Run or from within an event executing serially —
// holds gate parallelism on, never interrupt it.
func (g *Group) HoldSerial() { g.holds++ }

// ReleaseSerial releases one serial hold.
func (g *Group) ReleaseSerial() {
	if g.holds <= 0 {
		panic("sim: ReleaseSerial without a matching HoldSerial")
	}
	g.holds--
}

// SerialHolds reports the number of armed holds.
func (g *Group) SerialHolds() int { return g.holds }

// Handoff schedules fn at time at on shard dst on behalf of shard src.
// Outside a window it schedules directly (coordinator context, globally
// ordered); inside a window it enqueues on the src->dst hand-off lane for
// the barrier merge. at must be at least the issuing shard's current time
// plus the group's lookahead when called from a window.
func (g *Group) Handoff(src, dst int, at Time, fn func()) {
	se := g.engines[src]
	if !g.windowed {
		// Serial regime (or setup): schedule directly, stamped with the
		// issuing shard's clock — the global current time, since serial
		// execution only ever advances the executing shard.
		g.engines[dst].atFrom(at, se.now, se.curSchedAt, uint32(src), fn)
		return
	}
	g.queues[src][dst] = append(g.queues[src][dst],
		handoff{at: at, issueAt: se.now, pSchedAt: se.curSchedAt, src: src, fn: fn})
}

// Step executes the single globally-earliest pending event, serially.
// It reports whether an event was executed. Between runs (and in tests)
// it is the deterministic single-step primitive; Run uses it for every
// serial-regime event.
//
// Head events are compared by the same (at, schedAt, pSchedAt, ...)
// order the per-shard heaps use. While the shared counter is attached
// (the serial regime proper) sequence numbers are globally unique and
// decide every remaining tie exactly as a single engine would; after
// detach (Await-style stepping of an already-windowed group) seqs from
// different shards are only comparable for serial-era events, so the
// lineage stamps and the shard index break cross-shard ties instead.
func (g *Group) Step() bool {
	best := -1
	var bh event
	for i, e := range g.engines {
		h, ok := e.peekHead()
		if !ok {
			continue
		}
		if best < 0 || headLess(&h, i, &bh, best, g) {
			best, bh = i, h
		}
	}
	if best < 0 {
		return false
	}
	g.engines[best].Step()
	return true
}

// headLess orders two engines' head events globally (see Step).
func headLess(a *event, ai int, b *event, bi int, g *Group) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.pSchedAt != b.pSchedAt {
		return a.pSchedAt < b.pSchedAt
	}
	aSerial := a.seq <= g.engines[ai].serialMax
	bSerial := b.seq <= g.engines[bi].serialMax
	if aSerial && bSerial {
		// Shared-counter era: seq is the exact global scheduling order.
		return a.seq < b.seq
	}
	if aSerial != bSerial {
		// Mixed eras: everything serial-scheduled precedes window-era
		// scheduling at the same instant.
		return aSerial
	}
	if a.src != b.src {
		return a.src < b.src
	}
	if ai != bi {
		return ai < bi
	}
	return a.seq < b.seq
}

// Run executes events until the group is quiescent, honoring serial
// holds and running hold-free stretches as parallel windows.
func (g *Group) Run() { g.run(maxTime) }

// RunUntil executes events with time <= deadline, then advances every
// idle shard clock to the deadline (single-engine RunUntil semantics).
func (g *Group) RunUntil(deadline Time) {
	g.run(deadline)
	for _, e := range g.engines {
		e.AdvanceTo(deadline)
	}
}

// RunFor executes events for d of simulated time from the global clock.
func (g *Group) RunFor(d Duration) { g.RunUntil(g.Now().Add(d)) }

const maxTime = Time(1<<63 - 1)

func (g *Group) run(deadline Time) {
	defer g.releaseLanes()
	defer g.stopWorkers()
	for {
		minAt, ok := g.minNext()
		if !ok || minAt > deadline {
			return
		}
		if g.holds > 0 {
			g.Step()
			continue
		}
		// Hold-free: run a parallel window. The first window permanently
		// detaches the shared sequence counter (holds only ever release,
		// so the group never returns to the attached serial regime).
		g.detach()
		h := minAt.Add(g.lookahead)
		if deadline != maxTime && h > deadline {
			// Cap at the deadline but keep RunUntil's inclusive bound.
			h = deadline + 1
		}
		g.window(h, deadline)
	}
}

func (g *Group) detach() {
	if !g.attached {
		return
	}
	g.attached = false
	for _, e := range g.engines {
		e.detachSeq()
	}
}

// minNext returns the earliest pending event time across shards.
func (g *Group) minNext() (Time, bool) {
	best := false
	var bAt Time
	for _, e := range g.engines {
		if at, _, ok := e.Peek(); ok && (!best || at < bAt) {
			best, bAt = true, at
		}
	}
	return bAt, best
}

// addSat is saturating Time + Duration (d must be non-negative); shard
// bound arithmetic treats maxTime as infinity.
func addSat(t Time, d Duration) Time {
	if t > maxTime-Time(d) {
		return maxTime
	}
	return t + Time(d)
}

// twoMins returns the two smallest values of v and the index of the
// first minimum. With fewer than two entries the missing slots read as
// maxTime (infinity).
func twoMins(v []Time) (m1, m2 Time, arg1 int) {
	m1, m2, arg1 = maxTime, maxTime, -1
	for i, t := range v {
		if t < m1 {
			m1, m2, arg1 = t, m1, i
		} else if t < m2 {
			m2 = t
		}
	}
	return
}

// planBounds computes each shard's window bound. Without speculation
// every bound is the conservative horizon h. With a budget, shard s may
// run to F_s = min(min_{i≠s} t_i + L, h + budget) where
// t_i = min(next_i, min_{j≠i} next_j + L) lower-bounds shard i's earliest
// future execution instant (see the type comment for the argument); every
// future arrival into s lands at or after F_s, so the extended window is
// exactly as safe as the conservative one.
func (g *Group) planBounds(h, deadline Time) {
	n := len(g.engines)
	if g.spec <= 0 || n == 1 {
		for i := range g.bounds {
			g.bounds[i] = h
		}
		return
	}
	for i, e := range g.engines {
		if at, _, ok := e.Peek(); ok {
			g.next[i] = at
		} else {
			g.next[i] = maxTime
		}
	}
	L := g.lookahead
	n1, n2, na := twoMins(g.next)
	for i := 0; i < n; i++ {
		other := n1
		if i == na {
			other = n2
		}
		t := addSat(other, L)
		if g.next[i] < t {
			t = g.next[i]
		}
		g.tmin[i] = t
	}
	budgetCap := addSat(h, g.spec)
	t1, t2, ta := twoMins(g.tmin)
	for s := 0; s < n; s++ {
		other := t1
		if s == ta {
			other = t2
		}
		b := addSat(other, L)
		if b > budgetCap {
			b = budgetCap
		}
		if b < h {
			b = h
		}
		if deadline != maxTime && b > deadline {
			b = deadline + 1
		}
		g.bounds[s] = b
	}
}

// window runs one parallel round to horizon h (shards with speculative
// headroom run to their bound) and merges the hand-offs. The coordinator
// executes its own shard block inline; spawned workers handle the rest.
func (g *Group) window(h, deadline Time) {
	g.windows++
	g.planBounds(h, deadline)
	g.horizon = h
	g.windowed = true
	spawned := g.workers - 1
	if spawned > 0 {
		g.startWorkers()
		g.done.Store(0)
		g.round.Add(1) // release: workers observe windowed, horizon, bounds
		g.pmu.Lock()
		g.wakeCond.Broadcast()
		g.pmu.Unlock()
	}
	g.runShards(g.assign[0])
	if spawned > 0 {
		g.awaitCount(&g.done, int64(spawned))
	}
	g.windowed = false
	if p := g.failure.Load(); p != nil {
		g.failed = true
		panic(p.v)
	}
	g.mergeHandoffs()
	g.commitSpeculation()
}

// runShards executes one executor's shard block for the current window:
// the conservative stretch to the horizon, then — when the planned bound
// exceeds it — a snapshotted speculative stretch to the bound. A model
// panic is captured for the coordinator to rethrow after the barrier.
func (g *Group) runShards(shards []int) {
	defer func() {
		if r := recover(); r != nil {
			g.failure.CompareAndSwap(nil, &panicValue{v: fmt.Errorf("sim: worker shard panic: %v", r)})
		}
	}()
	h := g.horizon
	for _, s := range shards {
		e := g.engines[s]
		e.RunBefore(h)
		if b := g.bounds[s]; b > h {
			e.BeginSpeculation()
			e.RunBefore(b)
		}
	}
}

// commitSpeculation makes every shard's speculated stretch permanent —
// called after the barrier merge validated that nothing landed inside one.
func (g *Group) commitSpeculation() {
	for _, e := range g.engines {
		e.CommitSpeculation()
	}
}

// mergeHandoffs drains every cross-shard lane and inserts each
// destination's arrivals in deterministic order: collected src-major (so
// a stable sort by (at, issueAt) leaves equal keys in (src, enqueue)
// order), which reproduces the scheduling order of a single engine —
// earlier issue first, then source node order, which shard blocks and
// per-shard enqueue order are aligned with.
func (g *Group) mergeHandoffs() {
	for dst := range g.engines {
		batch := g.merge[:0]
		for src := range g.engines {
			q := g.queues[src][dst]
			if len(q) == 0 {
				continue
			}
			batch = append(batch, q...)
			for i := range q {
				q[i] = handoff{}
			}
			g.queues[src][dst] = q[:0]
		}
		if len(batch) == 0 {
			g.merge = batch
			continue
		}
		insertionSortHandoffs(batch)
		e := g.engines[dst]
		for i := range batch {
			if batch[i].at < e.now && e.Speculating() {
				// The backend broke its Lookahead contract: an arrival
				// landed inside the speculated range. Model side effects
				// cannot be unwound, so restore a coherent schedule for the
				// diagnostic and fail loudly.
				spec, reached := e.specNow, e.now
				e.RollbackSpeculation()
				g.failed = true
				panic(fmt.Sprintf(
					"sim: lookahead contract violated: shard %d -> %d arrival at %d lands inside the speculated range (%d, %d]; engine rolled back to %d",
					batch[i].src, dst, int64(batch[i].at), int64(spec), int64(reached), int64(e.now)))
			}
			// Stamp the arrival with its issue time: the heap's
			// (at, schedAt, seq) order then slots it among the
			// destination's same-timestamp local events exactly where a
			// single engine's scheduling would have.
			e.atFrom(batch[i].at, batch[i].issueAt, batch[i].pSchedAt, uint32(batch[i].src), batch[i].fn)
			batch[i] = handoff{}
		}
		g.merge = batch[:0]
	}
}

// insertionSortHandoffs stable-sorts a barrier batch by (at, issueAt).
// Batches are small (one window's cross-shard traffic) and collected
// nearly sorted, where insertion sort beats the generic sort without
// allocating.
func insertionSortHandoffs(b []handoff) {
	for i := 1; i < len(b); i++ {
		h := b[i]
		j := i - 1
		for j >= 0 && (b[j].at > h.at || (b[j].at == h.at &&
			(b[j].issueAt > h.issueAt || (b[j].issueAt == h.issueAt && b[j].pSchedAt > h.pSchedAt)))) {
			b[j+1] = b[j]
			j--
		}
		b[j+1] = h
	}
}

// maxRetainedLane caps the hand-off capacity an idle Group keeps per
// cross-shard lane between runs: peak-window lanes above it are released
// so an O(shards²) lane matrix does not pin peak memory across scenarios.
const maxRetainedLane = 64

// releaseLanes drops oversized hand-off lanes and the merge scratch at
// the end of a run (all are empty by then; only capacity is at stake).
func (g *Group) releaseLanes() {
	for src := range g.queues {
		for dst, q := range g.queues[src] {
			if cap(q) > maxRetainedLane {
				g.queues[src][dst] = nil
			}
		}
	}
	g.merge = nil
}

// barrierSpin bounds the polite-spin phase of every barrier wait before
// the waiter parks on a cond: long enough to catch the common sub-window
// hand-off without a syscall, short enough that oversubscribed hosts
// (workers ≥ cores) degrade to parking instead of burning cores.
const barrierSpin = 256

// startWorkers spawns the window workers (executors 1..workers-1) on
// first use within a run; the coordinator is executor 0.
func (g *Group) startWorkers() {
	if g.running {
		return
	}
	g.running = true
	g.quit.Store(false)
	g.round.Store(0)
	base := g.round.Load()
	for w := 1; w < g.workers; w++ {
		go g.worker(g.assign[w], base)
	}
}

// stopWorkers retires the worker goroutines at the end of a run, so an
// idle Group pins no goroutines (or OS threads) between runs.
func (g *Group) stopWorkers() {
	if !g.running {
		return
	}
	g.quit.Store(true)
	g.round.Add(1)
	g.pmu.Lock()
	g.wakeCond.Broadcast()
	g.pmu.Unlock()
	// Wait for every worker to acknowledge, so a subsequent run's workers
	// never race a retiring generation.
	g.awaitCount(&g.acks, int64(g.workers-1))
	g.running = false
	g.acks.Store(0)
	g.done.Store(0)
	if p := g.failure.Load(); p != nil && !g.failed {
		g.failed = true
		panic(p.v)
	}
}

// awaitRound is the worker side of the release barrier: a bounded polite
// spin on the round counter, then a park on wakeCond (re-checked under
// the lock, so a release between the last poll and the park is never
// lost). It returns the observed round.
func (g *Group) awaitRound(last uint64) uint64 {
	for i := 0; i < barrierSpin; i++ {
		if r := g.round.Load(); r != last {
			return r
		}
		runtime.Gosched()
	}
	g.pmu.Lock()
	for g.round.Load() == last {
		g.wakeCond.Wait()
	}
	r := g.round.Load()
	g.pmu.Unlock()
	return r
}

// awaitCount is the coordinator side: spin briefly for c to reach n, then
// park on idleCond until the last counted worker signals it.
func (g *Group) awaitCount(c *atomic.Int64, n int64) {
	for i := 0; i < barrierSpin; i++ {
		if c.Load() >= n {
			return
		}
		runtime.Gosched()
	}
	g.pmu.Lock()
	for c.Load() < n {
		g.idleCond.Wait()
	}
	g.pmu.Unlock()
}

// signalIdle wakes a possibly-parked coordinator; called by the worker
// whose count increment completed the barrier.
func (g *Group) signalIdle() {
	g.pmu.Lock()
	g.idleCond.Broadcast()
	g.pmu.Unlock()
}

// worker is one spawned window executor: it waits (spin, then park) for
// the next round, runs its shard block to the planned bounds, and reports
// back. The OS thread is locked for the run, pinning the shard block's
// cache footprint to one kernel thread.
func (g *Group) worker(shards []int, last uint64) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	spawned := int64(g.workers - 1)
	for {
		last = g.awaitRound(last)
		if g.quit.Load() {
			if g.acks.Add(1) == spawned {
				g.signalIdle()
			}
			return
		}
		g.runShards(shards)
		if g.done.Add(1) == spawned {
			g.signalIdle()
		}
	}
}
