package sim

import (
	"math/bits"
	"sync"
)

// bufClasses bounds the pooled size classes: 1<<23 = 8 MB. Larger buffers
// are so rare in a frame-granular fabric that pooling them would only pin
// memory.
const bufClasses = 24

// BufPool recycles byte buffers by power-of-two size class. It is the
// scratch allocator for transient per-message staging (a fabric's in-flight
// put payloads): Get returns a buffer of exactly n bytes whose contents are
// UNSPECIFIED — callers overwrite it fully — and Put recycles it.
//
// The pool is not safe for concurrent use; it is meant to be owned by a
// single-threaded component (one fabric, one engine), which keeps Get/Put
// at slice-append cost with no interface boxing.
type BufPool struct {
	classes [bufClasses][][]byte
	// arena, when attached, backs class misses with shard-local chunked
	// allocation instead of individual heap objects (see Arena).
	arena *Arena
}

// AttachArena backs the pool's fresh allocations with a (attach nil to
// detach). The arena must share the pool's owner: both are single-owner.
func (p *BufPool) AttachArena(a *Arena) { p.arena = a }

// Get returns a buffer of length n. Contents are unspecified.
func (p *BufPool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	k := bits.Len(uint(n - 1)) // smallest k with 1<<k >= n
	if k >= bufClasses {
		return make([]byte, n)
	}
	if l := p.classes[k]; len(l) > 0 {
		b := l[len(l)-1]
		l[len(l)-1] = nil
		p.classes[k] = l[:len(l)-1]
		return b[:n]
	}
	if p.arena != nil {
		// Power-of-two capacity keeps arena-carved buffers recyclable
		// through Put's size classing.
		return p.arena.Alloc(n, 1<<k)
	}
	return make([]byte, n, 1<<k)
}

// Put recycles a buffer previously returned by Get. Buffers whose capacity
// is not an exact pooled size class (foreign buffers) are dropped.
func (p *BufPool) Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := bits.Len(uint(c)) - 1
	if k >= bufClasses {
		return
	}
	p.classes[k] = append(p.classes[k], b[:0])
}

// SharedBufPool is the concurrent counterpart of BufPool: the same
// power-of-two size-classing over sync.Pool shards, safe to Get on one
// goroutine and Put on another. Cross-shard put payloads in the parallel
// engine use it — the buffer is snapshot on the issuing shard's worker
// and released on the destination shard's worker after delivery.
type SharedBufPool struct {
	classes [bufClasses]sync.Pool
}

// Get returns a buffer of length n. Contents are unspecified.
func (p *SharedBufPool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	k := bits.Len(uint(n - 1))
	if k >= bufClasses {
		return make([]byte, n)
	}
	if v := p.classes[k].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	return make([]byte, n, 1<<k)
}

// Put recycles a buffer previously returned by Get.
func (p *SharedBufPool) Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	k := bits.Len(uint(c)) - 1
	if k >= bufClasses {
		return
	}
	b = b[:0]
	p.classes[k].Put(&b)
}
