// Package sim provides the discrete-event simulation kernel used by every
// timing model in the repository: a virtual clock, an event queue, a
// deterministic random number generator, and simple queueing resources.
//
// All Two-Chains experiments run on simulated time. The functional path
// (message packing, GOT patching, jam execution) is real computation; only
// the passage of time is modelled, which makes every figure in the paper
// exactly reproducible from a seed.
package sim

import "fmt"

// Time is a point in simulated time, measured in integer picoseconds.
// Picosecond resolution lets the model express sub-nanosecond constants
// (e.g. per-byte wire time at 200 Gb/s is 40 ps) without floating-point
// drift, while int64 still covers more than 100 days of simulated time.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Nanoseconds returns the duration as a float64 number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a float64 number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromNanos converts a float64 nanosecond count to a Duration, rounding to
// the nearest picosecond.
func FromNanos(ns float64) Duration {
	if ns < 0 {
		return 0
	}
	return Duration(ns*float64(Nanosecond) + 0.5)
}

// FromMicros converts a float64 microsecond count to a Duration.
func FromMicros(us float64) Duration { return FromNanos(us * 1000) }

// String formats the duration with an adaptive unit, for logs and tables.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%.1fns", d.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxDur returns the longer of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}
