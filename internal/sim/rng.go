package sim

import "math"

// RNG is a deterministic pseudo-random number generator
// (xoshiro256** by Blackman & Vigna). Each model component owns its own
// stream so that enabling one noise source never perturbs another —
// a property the tail-latency experiments rely on.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit value via
// splitmix64, as recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which is a fixed point.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value with the given
// parameters of the underlying normal (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Pareto returns a Pareto(xm, alpha) distributed value: heavy-tailed with
// minimum xm. Used to model episodic memory-system interference spikes.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Split derives a new independent generator from this one. The child's
// stream is a deterministic function of the parent's state.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
