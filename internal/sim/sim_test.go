package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 5 {
			e.After(10, recur)
		}
	}
	e.After(0, recur)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 40 {
		t.Fatalf("Now = %d, want 40", e.Now())
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestAdvance(t *testing.T) {
	e := NewEngine()
	e.Advance(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %d", e.Now())
	}
	e.At(150, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Advance past pending event did not panic")
		}
	}()
	e.Advance(100)
}

func TestResourcePipelining(t *testing.T) {
	r := NewResource("wire")
	// Three back-to-back claims at t=0 serialize.
	d1 := r.Claim(0, 100)
	d2 := r.Claim(0, 100)
	d3 := r.Claim(0, 100)
	if d1 != 100 || d2 != 200 || d3 != 300 {
		t.Fatalf("got %d %d %d, want 100 200 300", d1, d2, d3)
	}
	// A claim after the backlog drains starts immediately.
	d4 := r.Claim(1000, 50)
	if d4 != 1050 {
		t.Fatalf("d4 = %d, want 1050", d4)
	}
	if r.Served() != 4 {
		t.Fatalf("served = %d", r.Served())
	}
	if r.BusyTime() != 350 {
		t.Fatalf("busy = %d", r.BusyTime())
	}
}

func TestResourceClaimAtQueueing(t *testing.T) {
	r := NewResource("nic")
	r.Claim(0, 100)
	start, done := r.ClaimAt(10, 20)
	if start != 100 || done != 120 {
		t.Fatalf("start=%d done=%d, want 100 120", start, done)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	f := func(skip uint8) bool {
		for i := 0; i < int(skip); i++ {
			r.Uint64()
		}
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %f", mean)
	}
	varr := sum2/n - mean*mean
	if math.Abs(varr-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %f", varr)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(250)
	}
	mean := sum / n
	if math.Abs(mean-250) > 10 {
		t.Fatalf("exp mean = %f, want ~250", mean)
	}
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1, 2)
		if v < 1 {
			t.Fatalf("pareto below xm: %f", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = (1/10)^2 = 1%.
	frac := float64(over) / n
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("pareto tail fraction = %f, want ~0.01", frac)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn did not cover range: %v", seen)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	a := NewRNG(5)
	child := a.Split()
	// Parent and child streams should differ.
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams identical: %d collisions", same)
	}
}

func TestDurationConversions(t *testing.T) {
	if FromNanos(1.5) != 1500*Picosecond {
		t.Fatalf("FromNanos(1.5) = %d", FromNanos(1.5))
	}
	if FromMicros(2) != 2*Microsecond {
		t.Fatalf("FromMicros(2) = %d", FromMicros(2))
	}
	d := 1500 * Nanosecond
	if d.Microseconds() != 1.5 {
		t.Fatalf("Microseconds = %f", d.Microseconds())
	}
	if got := (2 * Microsecond).String(); got != "2.000us" {
		t.Fatalf("String = %q", got)
	}
	if got := (500 * Picosecond).String(); got != "500ps" {
		t.Fatalf("String = %q", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	f := func(a, b int32) bool {
		t0 := Time(a)
		d := Duration(b)
		return t0.Add(d).Sub(t0) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
