package sim

// Resource models a serially reusable unit (a NIC DMA engine, a wire, a CPU
// core) as a single FIFO server: work items occupy it back to back, and a
// request issued while the resource is busy is queued behind the current
// occupant. This captures pipelining: a stream of messages through a chain
// of Resources overlaps exactly as hardware stages would.
type Resource struct {
	name     string
	lazyName func() string // builds name on first use; nil once built
	nextFree Time
	busy     Duration // total busy time, for utilization reporting
	served   uint64
}

// NewResource returns an idle resource with the given diagnostic name.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// NewResourceLazy returns an idle resource whose diagnostic name is built
// only if something asks for it. Hot paths that mint many resources (one
// per wire of an N-node fabric) use it to keep label formatting off the
// setup path entirely.
func NewResourceLazy(name func() string) *Resource {
	return &Resource{lazyName: name}
}

// Name returns the diagnostic name, building (and caching) a lazy one.
func (r *Resource) Name() string {
	if r.lazyName != nil {
		r.name = r.lazyName()
		r.lazyName = nil
	}
	return r.name
}

// Claim reserves the resource for dur starting no earlier than now, queueing
// behind earlier work. It returns the time at which this work completes.
// The caller typically schedules the downstream event at the returned time.
func (r *Resource) Claim(now Time, dur Duration) (done Time) {
	start := Max(now, r.nextFree)
	done = start.Add(dur)
	r.nextFree = done
	r.busy += dur
	r.served++
	return done
}

// ClaimAt is Claim but also returns the start time, for models that care
// about queueing delay separately from service time.
func (r *Resource) ClaimAt(now Time, dur Duration) (start, done Time) {
	start = Max(now, r.nextFree)
	done = start.Add(dur)
	r.nextFree = done
	r.busy += dur
	r.served++
	return start, done
}

// FreeAt returns the earliest time new work could start.
func (r *Resource) FreeAt() Time { return r.nextFree }

// BusyTime returns the cumulative busy duration.
func (r *Resource) BusyTime() Duration { return r.busy }

// Served returns the number of claims processed.
func (r *Resource) Served() uint64 { return r.served }

// Reset returns the resource to idle at time zero and clears statistics.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.served = 0
}
