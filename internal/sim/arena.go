package sim

// Arena is a chunked bump allocator for byte buffers owned by one shard.
// It exists so the per-shard BufPools of the parallel engine can satisfy
// class misses from shard-local chunks instead of individual Go heap
// allocations: one worker's steady-state buffer churn then touches memory
// carved from a handful of large chunks it allocated itself, rather than
// interleaving small objects with every other shard on the shared heap.
//
// The arena never frees individual buffers — recycling is the pool's job
// (Alloc hands out power-of-two capacities so the pool can class them) —
// and it is not safe for concurrent use, matching BufPool's single-owner
// contract.
type Arena struct {
	chunk     []byte // current chunk; len is the high-water mark
	chunkSize int
	chunks    int // chunks allocated (stats/tests)
}

// defaultArenaChunk is the chunk size NewArena uses for size <= 0.
const defaultArenaChunk = 256 << 10

// NewArena returns an arena carving buffers out of chunkSize-byte chunks
// (a default is applied when chunkSize <= 0).
func NewArena(chunkSize int) *Arena {
	if chunkSize <= 0 {
		chunkSize = defaultArenaChunk
	}
	return &Arena{chunkSize: chunkSize}
}

// Alloc returns a zeroed buffer of length n and capacity c (c >= n).
// Requests larger than the chunk size fall through to a direct
// allocation; everything else is bumped off the current chunk.
func (a *Arena) Alloc(n, c int) []byte {
	if c < n {
		c = n
	}
	if c > a.chunkSize {
		return make([]byte, n, c)
	}
	if cap(a.chunk)-len(a.chunk) < c {
		a.chunk = make([]byte, 0, a.chunkSize)
		a.chunks++
	}
	off := len(a.chunk)
	a.chunk = a.chunk[:off+c]
	return a.chunk[off : off+n : off+c]
}

// Chunks reports how many chunks the arena has allocated.
func (a *Arena) Chunks() int { return a.chunks }
