package sim

import "fmt"

// event is one scheduled callback, stored by value in the engine's queue.
// Events with equal times fire in the order they were scheduled: first by
// the simulated time they were scheduled at (schedAt), then FIFO by
// sequence number. On a single engine seq alone already encodes that
// order (scheduling happens in nondecreasing simulated time, so seq is
// monotone in schedAt and the tie-break is unchanged from the classic
// (at, seq) rule); schedAt exists so the parallel group can merge a
// cross-shard arrival into a destination heap at its true scheduling
// position among same-timestamp local events, reproducing the single
// engine's order even though the arrival's seq is assigned at the merge.
type event struct {
	at      Time
	schedAt Time
	// pSchedAt is the scheduling event's own schedAt — one more
	// generation of lineage. At equal (at, schedAt) — two events
	// scheduled at the same instant by different parents — the single
	// engine orders them by the order their parents executed, which at
	// one timestamp is exactly ascending parent-schedAt; carrying it
	// makes that comparison possible across shards, where sequence
	// numbers from different counters say nothing.
	pSchedAt Time
	seq      uint64
	// src is the shard that scheduled the event: the owning engine's own
	// shard id for everything scheduled locally (always 0 outside a
	// group), the issuing shard's id for a cross-shard arrival merged in
	// at a window barrier. For equal (at, schedAt) — simultaneous
	// scheduling on different shards, which symmetric workloads produce
	// systematically — ascending src reproduces the single engine's
	// order: shard blocks are laid out in node order, and simultaneous
	// scheduling chains trace back to the node-ordered roots.
	src uint32
	fn  func()
}

// less is the queue's strict total order: (at, schedAt, pSchedAt)
// ascending, then the lineage tie-break. Sequence numbers decide the
// final tie whenever they are meaningful — always on a single engine,
// and within a group's serial regime, where every engine draws from one
// shared counter so seq is exactly the global scheduling order. Only
// when both events were scheduled after the group detached into
// parallel windows (seq > serialMax) do per-shard counters stop being
// comparable across origins, and there the scheduling shard (src)
// breaks the tie: simultaneous same-lineage scheduling on different
// shards is the signature of a symmetric workload, whose single-engine
// order follows the node-ordered shard blocks. Because seq is unique
// per heap, two distinct events are never equal, so any heap shape pops
// them in exactly one order — on a single engine, the same order the
// old (at, seq) binary heap produced.
func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.schedAt != b.schedAt {
		return a.schedAt < b.schedAt
	}
	if a.pSchedAt != b.pSchedAt {
		return a.pSchedAt < b.pSchedAt
	}
	if a.src != b.src && a.seq > e.serialMax && b.seq > e.serialMax {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation engine: a virtual clock plus an
// ordered queue of pending events. An Engine is not safe for concurrent use;
// the entire simulation runs single-threaded, which is what makes it
// deterministic.
//
// The queue is an inlined 4-ary min-heap over value-type events: pushes
// append into the slice and pops backfill from the tail, so the slice's
// capacity acts as the event free-list — steady-state scheduling performs
// no per-event allocation and no interface boxing. A 4-ary layout halves
// the tree depth of a binary heap, trading slightly wider sift-down scans
// (which stay within one cache line of siblings) for fewer levels touched
// per operation.
type Engine struct {
	now    Time
	queue  []event
	seq    uint64
	nSteps uint64
	// shardID is the engine's index within its Group (0 otherwise); it
	// stamps locally scheduled events' src component.
	shardID uint32
	// curSchedAt is the schedAt of the event currently executing — the
	// lineage stamp inherited by everything it schedules.
	curSchedAt Time
	// serialMax is the highest sequence number issued while this engine
	// drew from a group's shared counter (0 on plain engines, unbounded
	// while attached): at or below it, seq order is the exact global
	// scheduling order and wins every tie.
	serialMax uint64
	// seqShared, when non-nil, replaces the engine's private sequence
	// counter with a counter shared by every engine of a Group. While the
	// group executes serially, scheduling order — and therefore the
	// (at, seq) tie-break — is globally total, exactly as if all shards
	// shared one engine. Detaching (at the first parallel window) seeds
	// the private counter from the shared one, so per-shard sequence
	// numbers stay monotone across the transition.
	seqShared *uint64

	// Speculation snapshot (BeginSpeculation). While specActive, every
	// popped event is appended to specLog so RollbackSpeculation can
	// restore the schedule: the queue is purged of events scheduled after
	// the snapshot (seq > specSeq) and the logged pre-snapshot events are
	// re-pushed with their original stamps.
	specActive  bool
	specNow     Time
	specSchedAt Time
	specSeq     uint64
	specSteps   uint64
	specLog     []event
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) {
	e.atFrom(t, e.now, e.curSchedAt, e.shardID, fn)
}

// AtScheduled schedules fn at absolute time t as if the scheduling had
// happened at simulated time schedAt. The parallel group uses it for
// cross-shard arrivals (stamped with their issue time on the source
// shard) and for driving idle shards whose local clock lags the global
// one; plain At — schedAt = now — is the only form model code needs.
func (e *Engine) AtScheduled(t, schedAt Time, fn func()) {
	e.atFrom(t, schedAt, schedAt, e.shardID, fn)
}

// atFrom is AtScheduled with explicit lineage and scheduling-shard
// stamps; group barrier merges use it to plant cross-shard arrivals at
// their issuer's position in the tie-break order.
func (e *Engine) atFrom(t, schedAt, pSchedAt Time, src uint32, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %d < now %d", t, e.now))
	}
	if schedAt > t {
		schedAt = t
	}
	if pSchedAt > schedAt {
		pSchedAt = schedAt
	}
	var seq uint64
	if e.seqShared != nil {
		*e.seqShared++
		seq = *e.seqShared
	} else {
		e.seq++
		seq = e.seq
	}
	ev := event{at: t, schedAt: schedAt, pSchedAt: pSchedAt, seq: seq, src: src, fn: fn}
	q := append(e.queue, ev)
	// Sift up: move the hole toward the root until the parent sorts first.
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.less(&ev, &q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	e.queue = q
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the queue does not pin the popped closure; the slice capacity
// is retained and reused by subsequent pushes.
func (e *Engine) pop() event {
	q := e.queue
	n := len(q) - 1
	root := q[0]
	last := q[n]
	q[n] = event{}
	q = q[:n]
	if n > 0 {
		// Sift the former tail down from the root: at each level pick the
		// smallest of up to four children.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if e.less(&q[j], &q[m]) {
					m = j
				}
			}
			if !e.less(&q[m], &last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	e.queue = q
	return root
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the single earliest pending event, advancing the clock.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	if e.specActive {
		e.specLog = append(e.specLog, ev)
	}
	e.now = ev.at
	e.curSchedAt = ev.schedAt
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock is left at the last executed event
// (or advanced to deadline if nothing else ran).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d simulated time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Peek reports the earliest pending event's time and sequence number
// without executing it; ok is false when the queue is empty. Group
// coordinators use it to pick the globally next event across shards.
func (e *Engine) Peek() (at Time, seq uint64, ok bool) {
	if len(e.queue) == 0 {
		return 0, 0, false
	}
	return e.queue[0].at, e.queue[0].seq, true
}

// peekHead returns the earliest pending event by value (fn dropped) for
// cross-engine ordering decisions; ok is false when the queue is empty.
func (e *Engine) peekHead() (ev event, ok bool) {
	if len(e.queue) == 0 {
		return event{}, false
	}
	ev = e.queue[0]
	ev.fn = nil
	return ev, true
}

// RunBefore executes events with time strictly before limit and reports
// how many ran. Events at or beyond the limit stay queued and the clock
// is left at the last executed event — the window primitive of the
// conservative parallel engine (the strict bound keeps merged cross-shard
// arrivals, which land at or after the horizon, ordered against local
// work).
func (e *Engine) RunBefore(limit Time) int {
	n := 0
	for len(e.queue) > 0 && e.queue[0].at < limit {
		e.Step()
		n++
	}
	return n
}

// AdvanceTo moves the clock forward to t without executing events,
// leaving it untouched if it is already at or past t or if an event
// pends at or before t (RunUntil semantics across a group of engines).
func (e *Engine) AdvanceTo(t Time) {
	if e.now >= t {
		return
	}
	if len(e.queue) > 0 && e.queue[0].at <= t {
		return
	}
	e.now = t
}

// attachSeq points the engine at a shared scheduling counter (Group
// serial mode); detachSeq returns it to its private counter, seeded past
// everything the shared counter issued.
func (e *Engine) attachSeq(c *uint64) {
	e.seqShared = c
	e.serialMax = ^uint64(0)
}

func (e *Engine) detachSeq() {
	if e.seqShared != nil {
		e.seq = *e.seqShared
		e.serialMax = e.seq
		e.seqShared = nil
	}
}

// BeginSpeculation snapshots the engine's schedule state (clock, lineage
// stamp, counters) and starts logging popped events, so a speculative
// stretch of execution past the conservative window horizon can be undone
// by RollbackSpeculation. Only the engine's own state is covered: model
// state mutated by speculated events is NOT snapshotted, so a rollback is
// a diagnostic recovery (restore a coherent schedule, then report), not a
// transparent one. Speculation requires a detached (private) sequence
// counter and cannot nest.
func (e *Engine) BeginSpeculation() {
	if e.specActive {
		panic("sim: BeginSpeculation: speculation already active")
	}
	if e.seqShared != nil {
		panic("sim: BeginSpeculation: engine still on a shared sequence counter")
	}
	e.specActive = true
	e.specNow = e.now
	e.specSchedAt = e.curSchedAt
	e.specSeq = e.seq
	e.specSteps = e.nSteps
	e.specLog = e.specLog[:0]
}

// Speculating reports whether a speculation snapshot is active.
func (e *Engine) Speculating() bool { return e.specActive }

// CommitSpeculation discards the snapshot, making the speculated events
// permanent. The redo log is cleared (closures dropped) but keeps its
// capacity for the next window.
func (e *Engine) CommitSpeculation() {
	if !e.specActive {
		return
	}
	e.specActive = false
	for i := range e.specLog {
		e.specLog[i] = event{}
	}
	e.specLog = e.specLog[:0]
}

// RollbackSpeculation restores the schedule to the BeginSpeculation
// snapshot: events scheduled during the speculated stretch (seq beyond
// the snapshot) are purged from the queue, the logged pre-snapshot events
// are re-pushed with their original stamps, and the clock and counters
// rewind. Model side effects of the speculated events are not undone —
// callers roll back to produce a coherent schedule for diagnostics before
// failing, not to silently retry.
func (e *Engine) RollbackSpeculation() {
	if !e.specActive {
		panic("sim: RollbackSpeculation without BeginSpeculation")
	}
	e.specActive = false
	kept := e.queue[:0]
	for i := range e.queue {
		if e.queue[i].seq <= e.specSeq {
			kept = append(kept, e.queue[i])
		}
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = event{}
	}
	e.queue = kept
	for i := range e.specLog {
		// Events both scheduled and executed inside the speculated stretch
		// vanish entirely on rollback.
		if e.specLog[i].seq <= e.specSeq {
			e.pushRaw(e.specLog[i])
		}
		e.specLog[i] = event{}
	}
	e.specLog = e.specLog[:0]
	e.heapify()
	e.now = e.specNow
	e.curSchedAt = e.specSchedAt
	e.seq = e.specSeq
	e.nSteps = e.specSteps
}

// pushRaw appends a fully-stamped event (rollback re-insertion: seq and
// lineage are preserved, not re-assigned). The heap property is restored
// by the caller's heapify.
func (e *Engine) pushRaw(ev event) { e.queue = append(e.queue, ev) }

// heapify restores the 4-ary heap property over the whole queue.
func (e *Engine) heapify() {
	q := e.queue
	n := len(q)
	for i := (n - 2) >> 2; i >= 0; i-- {
		v := q[i]
		j := i
		for {
			c := j<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for k := c + 1; k < end; k++ {
				if e.less(&q[k], &q[m]) {
					m = k
				}
			}
			if !e.less(&q[m], &v) {
				break
			}
			q[j] = q[m]
			j = m
		}
		q[j] = v
	}
}

// Advance moves the clock forward by d without executing events. It panics
// if an event would be skipped; it exists for sequential (non-pipelined)
// models that account time inline between events.
func (e *Engine) Advance(d Duration) {
	t := e.now.Add(d)
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic("sim: Advance would skip a pending event")
	}
	e.now = t
}
