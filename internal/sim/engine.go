package sim

import "fmt"

// event is one scheduled callback, stored by value in the engine's queue.
// Events with equal times fire in the order they were scheduled (FIFO
// tie-break by sequence number), which keeps runs deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before is the queue's strict total order: (at, seq) ascending. Because
// seq is unique, two distinct events are never equal, so any heap shape
// pops them in exactly one order — the same order the old binary heap
// produced.
func (e *event) before(o *event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Engine is a discrete-event simulation engine: a virtual clock plus an
// ordered queue of pending events. An Engine is not safe for concurrent use;
// the entire simulation runs single-threaded, which is what makes it
// deterministic.
//
// The queue is an inlined 4-ary min-heap over value-type events: pushes
// append into the slice and pops backfill from the tail, so the slice's
// capacity acts as the event free-list — steady-state scheduling performs
// no per-event allocation and no interface boxing. A 4-ary layout halves
// the tree depth of a binary heap, trading slightly wider sift-down scans
// (which stay within one cache line of siblings) for fewer levels touched
// per operation.
type Engine struct {
	now    Time
	queue  []event
	seq    uint64
	nSteps uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %d < now %d", t, e.now))
	}
	e.seq++
	ev := event{at: t, seq: e.seq, fn: fn}
	q := append(e.queue, ev)
	// Sift up: move the hole toward the root until the parent sorts first.
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ev.before(&q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ev
	e.queue = q
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the queue does not pin the popped closure; the slice capacity
// is retained and reused by subsequent pushes.
func (e *Engine) pop() event {
	q := e.queue
	n := len(q) - 1
	root := q[0]
	last := q[n]
	q[n] = event{}
	q = q[:n]
	if n > 0 {
		// Sift the former tail down from the root: at each level pick the
		// smallest of up to four children.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if q[j].before(&q[m]) {
					m = j
				}
			}
			if !q[m].before(&last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	e.queue = q
	return root
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the single earliest pending event, advancing the clock.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.pop()
	e.now = ev.at
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock is left at the last executed event
// (or advanced to deadline if nothing else ran).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d simulated time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Advance moves the clock forward by d without executing events. It panics
// if an event would be skipped; it exists for sequential (non-pipelined)
// models that account time inline between events.
func (e *Engine) Advance(d Duration) {
	t := e.now.Add(d)
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic("sim: Advance would skip a pending event")
	}
	e.now = t
}
