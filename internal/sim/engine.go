package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (FIFO tie-break by sequence number), which keeps runs
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine: a virtual clock plus an
// ordered queue of pending events. An Engine is not safe for concurrent use;
// the entire simulation runs single-threaded, which is what makes it
// deterministic.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	nSteps uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nSteps }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: %d < now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the single earliest pending event, advancing the clock.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	e.now = ev.at
	e.nSteps++
	ev.fn()
	return true
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= deadline. Events scheduled beyond
// the deadline remain queued; the clock is left at the last executed event
// (or advanced to deadline if nothing else ran).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d simulated time from now.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }

// Advance moves the clock forward by d without executing events. It panics
// if an event would be skipped; it exists for sequential (non-pipelined)
// models that account time inline between events.
func (e *Engine) Advance(d Duration) {
	t := e.now.Add(d)
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic("sim: Advance would skip a pending event")
	}
	e.now = t
}
