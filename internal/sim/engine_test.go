package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestEngineHeapMatchesSortedOrder drives the 4-ary heap with a large
// random schedule — duplicate timestamps included — and checks events pop
// in exact (at, seq) order, the total order the old binary heap produced.
func TestEngineHeapMatchesSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	type key struct {
		at  Time
		seq int
	}
	var want []key
	var got []key
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(500)) // dense times force many ties
		k := key{at, i}
		want = append(want, k)
		e.At(at, func() { got = append(got, k) })
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].at != want[j].at {
			return want[i].at < want[j].at
		}
		return want[i].seq < want[j].seq
	})
	e.Run()
	if len(got) != len(want) {
		t.Fatalf("executed %d of %d events", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got (at=%d seq=%d), want (at=%d seq=%d)",
				i, got[i].at, got[i].seq, want[i].at, want[i].seq)
		}
	}
}

// TestEngineSameTimestampSeqOrder pins the FIFO tie-break when events
// are interleaved with differently-timed ones (so the heap actually has
// to restore order, unlike an append-only schedule).
func TestEngineSameTimestampSeqOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.At(Time(100+10*(i%2)), func() { got = append(got, i) }) // alternate 100/110
	}
	e.Run()
	want := []int{0, 2, 4, 6, 1, 3, 5, 7} // all t=100 in seq order, then all t=110
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestEngineScheduleAtNowFromEvent schedules new work at the current
// time from inside an executing event: it must run in this same
// time-step, after already-queued events of the same timestamp (its seq
// is larger), and before any later-timed event.
func TestEngineScheduleAtNowFromEvent(t *testing.T) {
	e := NewEngine()
	var got []string
	e.At(10, func() {
		got = append(got, "a")
		e.At(e.Now(), func() { got = append(got, "now") })
		e.After(0, func() { got = append(got, "after0") })
	})
	e.At(10, func() { got = append(got, "b") })
	e.At(11, func() { got = append(got, "later") })
	e.Run()
	want := []string{"a", "b", "now", "after0", "later"}
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 11 {
		t.Fatalf("Now = %d, want 11", e.Now())
	}
}

// TestRunUntilLeavesFutureEventsQueued pins that RunUntil executes
// nothing past the deadline, leaves the remainder queued in order, and
// that a subsequent Run drains them.
func TestRunUntilLeavesFutureEventsQueued(t *testing.T) {
	e := NewEngine()
	var got []int
	for _, at := range []Time{5, 10, 15, 20, 25} {
		at := at
		e.At(at, func() { got = append(got, int(at)) })
	}
	e.RunUntil(15)
	if len(got) != 3 || got[0] != 5 || got[1] != 10 || got[2] != 15 {
		t.Fatalf("ran %v through deadline 15", got)
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %d, want 15", e.Now())
	}
	e.Run()
	if len(got) != 5 || got[3] != 20 || got[4] != 25 {
		t.Fatalf("drain after RunUntil ran %v", got)
	}
}

// TestEngineQueueReleasesClosures checks the popped tail slot is zeroed:
// the queue must not pin executed closures (their captures) alive.
func TestEngineQueueReleasesClosures(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 64; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	for i := range e.queue[:cap(e.queue)] {
		ev := e.queue[:cap(e.queue):cap(e.queue)][i]
		if ev.fn != nil {
			t.Fatalf("queue slot %d still holds a closure after Run", i)
		}
	}
}

// --- engine micro-benchmarks (the sim → injection hot path's base cost) ---

// BenchmarkEngineSchedulePop measures the push+pop cycle at a steady
// queue depth typical of a loaded mesh (hundreds of in-flight events).
func BenchmarkEngineSchedulePop(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	const depth = 256
	for i := 0; i < depth; i++ {
		e.At(Time(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+depth, fn)
		e.Step()
	}
}

// BenchmarkEngineCascade measures self-rescheduling chains — the
// self-clocked sender pattern — with an otherwise empty queue.
func BenchmarkEngineCascade(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	b.ResetTimer()
	e.After(0, tick)
	e.Run()
	if n < b.N {
		b.Fatalf("ran %d of %d ticks", n, b.N)
	}
}

// BenchmarkEngineBurstDrain measures scheduling a full burst then
// draining it — the SendBatch shape.
func BenchmarkEngineBurstDrain(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	fn := func() {}
	const burst = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := e.Now()
		for j := 0; j < burst; j++ {
			e.At(base+Time(j%7), fn)
		}
		e.Run()
	}
	b.SetBytes(0)
}
