package sim

import "testing"

// TestGroupToyDeterminism drives a toy multi-shard model — chains of
// events that hop between shards with at least the lookahead — and
// checks the execution trace is identical for every worker count.
func TestGroupToyDeterminism(t *testing.T) {
	const shards = 4
	const look = Duration(100)
	run := func(workers int) (trace []int64, final Time) {
		g := NewGroup(shards, workers, look)
		var mu = make([][]int64, shards)
		var hop func(s int, depth int, at Time)
		hop = func(s int, depth int, at Time) {
			mu[s] = append(mu[s], int64(at)*31+int64(s))
			if depth == 0 {
				return
			}
			// Local follow-up inside the window...
			g.Engine(s).After(Duration(3+depth%7), func() {
				mu[s] = append(mu[s], int64(depth))
			})
			// ...and a cross-shard hop at exactly the lookahead bound.
			d := (s + 1) % shards
			nextAt := g.Engine(s).Now().Add(look + Duration(depth%13))
			g.Handoff(s, d, nextAt, func() { hop(d, depth-1, nextAt) })
		}
		for s := 0; s < shards; s++ {
			s := s
			g.Engine(s).At(Time(s+1), func() { hop(s, 50, Time(s+1)) })
		}
		g.Run()
		for s := 0; s < shards; s++ {
			trace = append(trace, mu[s]...)
		}
		return trace, g.Now()
	}
	baseTrace, baseNow := run(1)
	for _, w := range []int{2, 4} {
		tr, now := run(w)
		if now != baseNow {
			t.Fatalf("workers=%d: final time %d, want %d", w, now, baseNow)
		}
		if len(tr) != len(baseTrace) {
			t.Fatalf("workers=%d: trace length %d, want %d", w, len(tr), len(baseTrace))
		}
		for i := range tr {
			if tr[i] != baseTrace[i] {
				t.Fatalf("workers=%d: trace[%d] = %d, want %d", w, i, tr[i], baseTrace[i])
			}
		}
	}
}

// TestGroupSerialExact pins that serial holds execute in exact global
// (at, seq) order across shards, including same-timestamp ties.
func TestGroupSerialExact(t *testing.T) {
	g := NewGroup(3, 2, 50)
	g.HoldSerial()
	var order []int
	// Same timestamp on three shards: scheduling order must win.
	for s := 2; s >= 0; s-- {
		s := s
		g.Engine(s).At(10, func() { order = append(order, s) })
	}
	g.Run()
	want := []int{2, 1, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("serial order %v, want %v", order, want)
		}
	}
	g.ReleaseSerial()
}

// TestGroupRunUntil checks deadline semantics across shards.
func TestGroupRunUntil(t *testing.T) {
	g := NewGroup(2, 2, 50)
	var ran []int
	g.Engine(0).At(10, func() { ran = append(ran, 0) })
	g.Engine(1).At(200, func() { ran = append(ran, 1) })
	g.RunUntil(100)
	if len(ran) != 1 || ran[0] != 0 {
		t.Fatalf("ran %v, want [0]", ran)
	}
	if g.Engine(0).Now() != 100 {
		t.Fatalf("idle shard clock %d, want 100", g.Engine(0).Now())
	}
	g.Run()
	if len(ran) != 2 {
		t.Fatalf("ran %v after full run", ran)
	}
}
