// Package elfobj defines the relocatable object format produced by the
// Two-Chains toolchain (assembler and AMC compiler) and consumed by the
// linker — the role ELF .o files play in the paper's GNU Binutils flow.
//
// An object holds four sections (.text, .rodata, .data, .bss), a symbol
// table, and relocations. The relocation set mirrors what the paper's
// -fPIC -fno-plt compilation discipline produces:
//
//   - RelCall / RelBranch: PC-relative references to symbols in .text,
//     position independent by construction;
//   - RelLea: PC-relative address formation (string literals, tables);
//   - RelGot: reference to an external symbol through a GOT slot — the
//     only way an object may touch anything outside itself;
//   - RelAbs64: an 8-byte pointer in .data/.rodata resolved at load time.
package elfobj

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies the serialized object format ("TCEO": Two-Chains ELF-
// like Object).
const Magic = 0x4f454354

// Version is the serialization version.
const Version = 1

// SectionID names a section.
type SectionID uint8

const (
	SecNone SectionID = iota
	SecText
	SecRodata
	SecData
	SecBss
)

func (s SectionID) String() string {
	switch s {
	case SecNone:
		return "*UND*"
	case SecText:
		return ".text"
	case SecRodata:
		return ".rodata"
	case SecData:
		return ".data"
	case SecBss:
		return ".bss"
	}
	return fmt.Sprintf("sec(%d)", uint8(s))
}

// Binding is symbol visibility.
type Binding uint8

const (
	BindLocal Binding = iota
	BindGlobal
)

// SymKind distinguishes code from data symbols.
type SymKind uint8

const (
	KindFunc SymKind = iota
	KindObject
)

// Symbol is one symbol-table entry. Undefined symbols (references to other
// modules or to native libraries) have Section == SecNone.
type Symbol struct {
	Name    string
	Section SectionID
	Binding Binding
	Kind    SymKind
	Value   uint32 // offset within Section
	Size    uint32
}

// Defined reports whether the symbol has a definition in this object.
func (s Symbol) Defined() bool { return s.Section != SecNone }

// RelocType enumerates fixup kinds.
type RelocType uint8

const (
	// RelCall patches the imm of a CALL instruction with the PC-relative
	// distance to the symbol, in instruction units.
	RelCall RelocType = iota
	// RelBranch is RelCall for conditional branches and JMP.
	RelBranch
	// RelLea patches the imm of a LEA instruction with the PC-relative
	// distance to the symbol, in bytes.
	RelLea
	// RelGot patches the imm of a CALLG/LDG instruction with the GOT slot
	// index the linker assigns to the symbol.
	RelGot
	// RelAbs64 writes the symbol's load-time VA (+addend) into 8 bytes of
	// a data section; resolved by the loader.
	RelAbs64
)

func (r RelocType) String() string {
	switch r {
	case RelCall:
		return "CALL"
	case RelBranch:
		return "BRANCH"
	case RelLea:
		return "LEA"
	case RelGot:
		return "GOT"
	case RelAbs64:
		return "ABS64"
	}
	return fmt.Sprintf("rel(%d)", uint8(r))
}

// Reloc is one relocation record.
type Reloc struct {
	Type    RelocType
	Section SectionID // section containing the bytes to fix up
	Offset  uint32    // byte offset of the fixup within Section
	Sym     int       // index into Symbols
	Addend  int32
}

// Object is a relocatable translation unit.
type Object struct {
	Name    string // source name, e.g. "jam_sssum.amc"
	Text    []byte
	Rodata  []byte
	Data    []byte
	BssSize uint32
	Symbols []Symbol
	Relocs  []Reloc
}

// Section returns the contents of a progbits section.
func (o *Object) Section(id SectionID) []byte {
	switch id {
	case SecText:
		return o.Text
	case SecRodata:
		return o.Rodata
	case SecData:
		return o.Data
	}
	return nil
}

// SectionSize returns the size of any section including .bss.
func (o *Object) SectionSize(id SectionID) int {
	if id == SecBss {
		return int(o.BssSize)
	}
	return len(o.Section(id))
}

// FindSymbol returns the index of the named symbol, or -1.
func (o *Object) FindSymbol(name string) int {
	for i, s := range o.Symbols {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency: symbol offsets within sections,
// relocation targets within bounds, symbol indices valid.
func (o *Object) Validate() error {
	for i, s := range o.Symbols {
		if s.Name == "" {
			return fmt.Errorf("elfobj %s: symbol %d has empty name", o.Name, i)
		}
		if s.Defined() {
			if int(s.Value) > o.SectionSize(s.Section) {
				return fmt.Errorf("elfobj %s: symbol %q offset %d outside %s (size %d)",
					o.Name, s.Name, s.Value, s.Section, o.SectionSize(s.Section))
			}
		}
	}
	for i, r := range o.Relocs {
		if r.Sym < 0 || r.Sym >= len(o.Symbols) {
			return fmt.Errorf("elfobj %s: reloc %d: bad symbol index %d", o.Name, i, r.Sym)
		}
		sec := o.Section(r.Section)
		if sec == nil {
			return fmt.Errorf("elfobj %s: reloc %d: fixup in %s", o.Name, i, r.Section)
		}
		need := 8
		if r.Type != RelAbs64 {
			// Instruction imm fixups patch 4 bytes at Offset+4.
			need = 8
			if r.Offset%8 != 0 {
				return fmt.Errorf("elfobj %s: reloc %d: %s fixup misaligned at %d",
					o.Name, i, r.Type, r.Offset)
			}
		}
		if int(r.Offset)+need > len(sec) {
			return fmt.Errorf("elfobj %s: reloc %d: fixup at %d overruns %s (size %d)",
				o.Name, i, r.Offset, r.Section, len(sec))
		}
	}
	if len(o.Text)%8 != 0 {
		return fmt.Errorf("elfobj %s: .text size %d not instruction aligned", o.Name, len(o.Text))
	}
	return nil
}

// Encode serializes the object.
func (o *Object) Encode() []byte {
	var b buf
	b.u32(Magic)
	b.u16(Version)
	b.str(o.Name)
	b.bytes(o.Text)
	b.bytes(o.Rodata)
	b.bytes(o.Data)
	b.u32(o.BssSize)
	b.u32(uint32(len(o.Symbols)))
	for _, s := range o.Symbols {
		b.str(s.Name)
		b.u8(uint8(s.Section))
		b.u8(uint8(s.Binding))
		b.u8(uint8(s.Kind))
		b.u32(s.Value)
		b.u32(s.Size)
	}
	b.u32(uint32(len(o.Relocs)))
	for _, r := range o.Relocs {
		b.u8(uint8(r.Type))
		b.u8(uint8(r.Section))
		b.u32(r.Offset)
		b.u32(uint32(r.Sym))
		b.u32(uint32(r.Addend))
	}
	return b.out
}

// Decode parses a serialized object.
func Decode(data []byte) (*Object, error) {
	r := reader{in: data}
	if r.u32() != Magic {
		return nil, fmt.Errorf("elfobj: bad magic")
	}
	if v := r.u16(); v != Version {
		return nil, fmt.Errorf("elfobj: unsupported version %d", v)
	}
	o := &Object{}
	o.Name = r.str()
	o.Text = r.bytes()
	o.Rodata = r.bytes()
	o.Data = r.bytes()
	o.BssSize = r.u32()
	nsym := int(r.u32())
	if nsym > 1<<20 {
		return nil, fmt.Errorf("elfobj: implausible symbol count %d", nsym)
	}
	if nsym > 0 {
		o.Symbols = make([]Symbol, nsym)
	}
	for i := range o.Symbols {
		o.Symbols[i] = Symbol{
			Name:    r.str(),
			Section: SectionID(r.u8()),
			Binding: Binding(r.u8()),
			Kind:    SymKind(r.u8()),
			Value:   r.u32(),
			Size:    r.u32(),
		}
	}
	nrel := int(r.u32())
	if nrel > 1<<20 {
		return nil, fmt.Errorf("elfobj: implausible reloc count %d", nrel)
	}
	if nrel > 0 {
		o.Relocs = make([]Reloc, nrel)
	}
	for i := range o.Relocs {
		o.Relocs[i] = Reloc{
			Type:    RelocType(r.u8()),
			Section: SectionID(r.u8()),
			Offset:  r.u32(),
			Sym:     int(r.u32()),
			Addend:  int32(r.u32()),
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("elfobj: truncated object: %w", r.err)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// buf is a tiny append-only encoder.
type buf struct{ out []byte }

func (b *buf) u8(v uint8)   { b.out = append(b.out, v) }
func (b *buf) u16(v uint16) { b.out = binary.LittleEndian.AppendUint16(b.out, v) }
func (b *buf) u32(v uint32) { b.out = binary.LittleEndian.AppendUint32(b.out, v) }
func (b *buf) str(s string) {
	b.u16(uint16(len(s)))
	b.out = append(b.out, s...)
}
func (b *buf) bytes(p []byte) {
	b.u32(uint32(len(p)))
	b.out = append(b.out, p...)
}

// reader is the matching decoder; it latches the first error.
type reader struct {
	in  []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.in) {
		r.err = fmt.Errorf("need %d bytes at %d, have %d", n, r.off, len(r.in)-r.off)
		return nil
	}
	out := r.in[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) str() string {
	n := int(r.u16())
	b := r.take(n)
	return string(b)
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if n == 0 {
		return nil
	}
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
