package elfobj

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleObject() *Object {
	return &Object{
		Name:    "jam_test.amc",
		Text:    make([]byte, 64),
		Rodata:  []byte("hello\x00"),
		Data:    make([]byte, 16),
		BssSize: 32,
		Symbols: []Symbol{
			{Name: "jam_test", Section: SecText, Binding: BindGlobal, Kind: KindFunc, Value: 0, Size: 64},
			{Name: "greeting", Section: SecRodata, Binding: BindLocal, Kind: KindObject, Value: 0, Size: 6},
			{Name: "memcpy", Section: SecNone, Binding: BindGlobal, Kind: KindFunc},
		},
		Relocs: []Reloc{
			{Type: RelGot, Section: SecText, Offset: 8, Sym: 2},
			{Type: RelLea, Section: SecText, Offset: 16, Sym: 1},
			{Type: RelAbs64, Section: SecData, Offset: 0, Sym: 0},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	o := sampleObject()
	data := o.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, back) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", o, back)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	data := sampleObject().Encode()
	data[0] ^= 0xFF
	if _, err := Decode(data); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	data := sampleObject().Encode()
	for _, cut := range []int{1, 7, len(data) / 2, len(data) - 1} {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsCorruptSymbolIndex(t *testing.T) {
	o := sampleObject()
	o.Relocs[0].Sym = 99
	if err := o.Validate(); err == nil {
		t.Fatal("bad symbol index validated")
	}
}

func TestValidateSymbolOffsets(t *testing.T) {
	o := sampleObject()
	o.Symbols[0].Value = 1000
	if err := o.Validate(); err == nil {
		t.Fatal("out-of-section symbol validated")
	}
}

func TestValidateRelocBounds(t *testing.T) {
	o := sampleObject()
	o.Relocs[0].Offset = 60 // 8-byte fixup would overrun 64-byte text
	if err := o.Validate(); err == nil {
		t.Fatal("overrunning reloc validated")
	}
}

func TestValidateMisalignedInstructionReloc(t *testing.T) {
	o := sampleObject()
	o.Relocs[0].Offset = 12 // not instruction aligned
	if err := o.Validate(); err == nil {
		t.Fatal("misaligned reloc validated")
	}
}

func TestValidateRaggedText(t *testing.T) {
	o := sampleObject()
	o.Text = make([]byte, 61)
	if err := o.Validate(); err == nil {
		t.Fatal("ragged text validated")
	}
}

func TestValidateEmptySymbolName(t *testing.T) {
	o := sampleObject()
	o.Symbols[0].Name = ""
	if err := o.Validate(); err == nil {
		t.Fatal("empty symbol name validated")
	}
}

func TestFindSymbol(t *testing.T) {
	o := sampleObject()
	if i := o.FindSymbol("memcpy"); i != 2 {
		t.Fatalf("FindSymbol(memcpy) = %d", i)
	}
	if i := o.FindSymbol("nope"); i != -1 {
		t.Fatalf("FindSymbol(nope) = %d", i)
	}
}

func TestSectionAccessors(t *testing.T) {
	o := sampleObject()
	if !bytes.Equal(o.Section(SecRodata), []byte("hello\x00")) {
		t.Fatal("Section(SecRodata) wrong")
	}
	if o.Section(SecBss) != nil {
		t.Fatal("bss has contents")
	}
	if o.SectionSize(SecBss) != 32 {
		t.Fatalf("SectionSize(bss) = %d", o.SectionSize(SecBss))
	}
	if o.SectionSize(SecText) != 64 {
		t.Fatalf("SectionSize(text) = %d", o.SectionSize(SecText))
	}
}

func TestDefined(t *testing.T) {
	o := sampleObject()
	if !o.Symbols[0].Defined() || o.Symbols[2].Defined() {
		t.Fatal("Defined() wrong")
	}
}

func TestStringers(t *testing.T) {
	if SecText.String() != ".text" || SecNone.String() != "*UND*" {
		t.Fatal("SectionID.String")
	}
	if RelGot.String() != "GOT" || RelAbs64.String() != "ABS64" {
		t.Fatal("RelocType.String")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any structurally valid object round-trips exactly.
	f := func(textWords []uint64, ro []byte, bss uint16, symName string) bool {
		if symName == "" {
			symName = "s"
		}
		if len(symName) > 1000 {
			symName = symName[:1000]
		}
		var text []byte
		if len(textWords) > 0 {
			text = make([]byte, 8*len(textWords))
			for i, w := range textWords {
				for j := 0; j < 8; j++ {
					text[i*8+j] = byte(w >> (8 * j))
				}
			}
		}
		o := &Object{
			Name:    "prop",
			Text:    text,
			Rodata:  ro,
			BssSize: uint32(bss),
			Symbols: []Symbol{{Name: symName, Section: SecText, Value: 0}},
		}
		if len(o.Rodata) == 0 {
			o.Rodata = nil
		}
		back, err := Decode(o.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(o, back)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	// Fuzz-ish: random prefixes must never panic.
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
