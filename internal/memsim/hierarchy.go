package memsim

import (
	"math"

	"twochains/internal/model"
	"twochains/internal/sim"
)

// Kind distinguishes access types; instruction fetches and data reads share
// the hierarchy in this model (the LLC is unified, and the L2 on the
// modelled part is shared between I and D streams).
type Kind int

const (
	Read  Kind = iota // data load
	Write             // data store (write-allocate)
	Fetch             // instruction fetch
)

// Config selects geometry and features for one node's hierarchy.
type Config struct {
	L2Size, L2Ways   int
	L3Size, L3Ways   int
	LLCSize, LLCWays int
	LineSize         int
	Stash            bool // inbound network writes land in the LLC
	Prefetch         bool // stride prefetcher enabled
	Seed             uint64
}

// DefaultConfig returns the paper-testbed geometry with stashing and
// prefetching enabled (the firmware defaults in §VI-C).
func DefaultConfig() Config {
	return Config{
		L2Size: model.L2Size, L2Ways: model.L2Ways,
		L3Size: model.L3Size, L3Ways: model.L3Ways,
		LLCSize: model.LLCSize, LLCWays: model.LLCWays,
		LineSize: model.LineSize,
		Stash:    true,
		Prefetch: true,
		Seed:     model.DefaultSeed,
	}
}

// Stats counts where accesses were satisfied.
type Stats struct {
	Accesses    uint64
	LinesL2     uint64
	LinesL3     uint64
	LinesLLC    uint64
	LinesDRAM   uint64
	LinesPref   uint64 // DRAM lines covered by a hot prefetch stream
	NetStashed  uint64 // network lines written into LLC
	NetToDRAM   uint64 // network lines written to DRAM
	StressEvict uint64 // LLC lines lost to the stressor
}

type stream struct {
	nextLine uint64
	hits     int
	lastUse  uint64
}

// Hierarchy is one node's cache hierarchy plus DRAM timing, prefetcher and
// stress models. It is not safe for concurrent use; the simulation is
// single-threaded.
type Hierarchy struct {
	cfg     Config
	l2, l3  *cache
	llc     *cache
	streams [model.PrefetchStreams]stream
	useCtr  uint64
	rng     *sim.RNG
	stress  bool
	stats   Stats
}

// New builds a hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	if cfg.LineSize == 0 {
		cfg = DefaultConfig()
	}
	return &Hierarchy{
		cfg: cfg,
		l2:  newCache(cfg.L2Size, cfg.L2Ways, cfg.LineSize),
		l3:  newCache(cfg.L3Size, cfg.L3Ways, cfg.LineSize),
		llc: newCache(cfg.LLCSize, cfg.LLCWays, cfg.LineSize),
		rng: sim.NewRNG(cfg.Seed ^ 0x6d656d73696d), // "memsim"
	}
}

// Config returns the active configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// SetStress toggles the co-running `stress-ng --class vm` interference
// model used by the tail-latency experiments.
func (h *Hierarchy) SetStress(on bool) { h.stress = on }

// Stressed reports whether the stress model is active.
func (h *Hierarchy) Stressed() bool { return h.stress }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters without touching cache contents.
func (h *Hierarchy) ResetStats() { h.stats = Stats{} }

func (h *Hierarchy) line(addr uint64) uint64 { return addr / uint64(h.cfg.LineSize) }

// trainPrefetch records a DRAM-level miss for line and reports whether the
// line was covered by an already-hot stream (i.e. effectively prefetched).
func (h *Hierarchy) trainPrefetch(line uint64) bool {
	if !h.cfg.Prefetch {
		return false
	}
	h.useCtr++
	// Existing stream expecting this line?
	for i := range h.streams {
		s := &h.streams[i]
		if s.nextLine == line && s.hits > 0 {
			s.hits++
			s.nextLine = line + 1
			s.lastUse = h.useCtr
			return s.hits > model.PrefetchTrainMisses
		}
	}
	// Start a new stream, replacing the least recently used slot.
	victim := 0
	for i := range h.streams {
		if h.streams[i].lastUse < h.streams[victim].lastUse {
			victim = i
		}
	}
	h.streams[victim] = stream{nextLine: line + 1, hits: 1, lastUse: h.useCtr}
	return false
}

// fill installs a line in all levels (the hierarchy is modelled inclusive).
func (h *Hierarchy) fill(line uint64) {
	h.l2.insert(line)
	h.l3.insert(line)
	h.llc.insert(line)
}

// Access models a CPU access (load, store, or instruction fetch) of size
// bytes at addr and returns its cost. Multi-line accesses are pipelined:
// the first line pays the full load-to-use latency of the level where it
// hits; subsequent lines pay the streaming (overlapped) per-line cost.
func (h *Hierarchy) Access(addr uint64, size int, k Kind) sim.Duration {
	return h.AccessSeq(addr, size, k, false)
}

// AccessSeq is Access with a sequential-stream hint: when seq is true the
// access continues a stream the caller has been walking (the previous line
// was just touched), so even its first line pays the overlapped streaming
// cost rather than the full load-to-use latency. The VM uses this for
// instruction fetch, where hardware fetch-ahead hides part of the next
// line's latency behind execution of the current one.
func (h *Hierarchy) AccessSeq(addr uint64, size int, k Kind, seq bool) sim.Duration {
	if size <= 0 {
		return 0
	}
	h.stats.Accesses++
	first := h.line(addr)
	last := h.line(addr + uint64(size) - 1)
	var cost sim.Duration
	for line := first; ; line++ {
		cost += h.accessLine(line, line == first && !seq, k)
		if line == last {
			break
		}
	}
	return cost
}

// streamCost is the overlapped per-line cost for non-lead lines. Data
// streams enjoy deep memory-level parallelism; instruction fetch is a
// dependent chain (the next fetch waits on the previous line), so injected
// code reads overlap far less — the effect behind the code-delivery cost
// the paper measures in Fig. 7 and Fig. 9.
func streamCost(k Kind, l3, llc, dram, pref bool) sim.Duration {
	if k == Fetch {
		switch {
		case l3:
			return sim.FromNanos(6)
		case llc:
			return sim.FromNanos(14)
		case pref:
			return sim.FromNanos(12)
		case dram:
			return sim.FromNanos(34)
		}
		return model.Cycles(1)
	}
	switch {
	case l3:
		return sim.FromNanos(4)
	case llc:
		return sim.FromNanos(8)
	case pref:
		return model.PrefillLat
	case dram:
		return model.MLPStream
	}
	return model.Cycles(1)
}

// accessLine costs a single line and updates cache state.
func (h *Hierarchy) accessLine(line uint64, lead bool, k Kind) sim.Duration {
	switch {
	case h.l2.lookup(line):
		h.stats.LinesL2++
		if lead {
			return model.L2HitLat
		}
		return streamCost(k, false, false, false, false)
	case h.l3.lookup(line):
		h.stats.LinesL3++
		h.l2.insert(line)
		if lead {
			return model.L3HitLat
		}
		return streamCost(k, true, false, false, false)
	case h.llc.lookup(line):
		// Under stress the stashed line may have been evicted by the
		// co-running workload between arrival and the handler's read. The
		// refetch hits a recently written, likely-open row and overlaps
		// with neighbouring accesses, so it is charged as a streaming
		// DRAM line rather than a full cold load.
		if h.stress && h.rng.Bernoulli(model.StressLLCEvictProb) {
			h.llc.invalidate(line)
			h.stats.StressEvict++
			return h.dramLine(line, false, k)
		}
		h.stats.LinesLLC++
		h.fill(line)
		var extra sim.Duration
		if h.stress {
			extra = sim.FromNanos(model.StressLLCExtraNs)
		}
		if lead {
			return model.LLCHitLat + extra
		}
		return streamCost(k, false, true, false, false) + extra
	default:
		return h.dramLine(line, lead, k)
	}
}

// dramLine costs a DRAM access for one line, consulting the prefetcher and
// the stress model, and fills the line into the hierarchy. The stride
// prefetcher is a data-side engine: demand instruction fetches do not train
// it (the modest I-side next-line prefetch is already folded into the
// Fetch streaming cost), which is why code arriving in messages stays
// expensive to fetch from DRAM while large data payloads get covered —
// the interaction Fig. 9 measures.
func (h *Hierarchy) dramLine(line uint64, lead bool, k Kind) sim.Duration {
	prefetched := k != Fetch && h.trainPrefetch(line)
	h.fill(line)
	var cost sim.Duration
	switch {
	case prefetched:
		h.stats.LinesPref++
		cost = streamCost(k, false, false, false, true)
		if lead {
			cost = model.PrefillLat + sim.FromNanos(4)
		}
	case lead:
		h.stats.LinesDRAM++
		cost = model.DRAMLat
	default:
		h.stats.LinesDRAM++
		cost = streamCost(k, false, false, true, false)
	}
	if h.stress {
		cost += h.stressDelay(lead)
	}
	return cost
}

// stressDelay samples memory-system interference for one DRAM line.
// Queueing contention applies to every line; episodic spikes are sampled on
// lead lines (one episode per access, not per line).
func (h *Hierarchy) stressDelay(lead bool) sim.Duration {
	// Lognormal queueing delay whose median is the configured typical
	// value, scaled down for overlapped lines.
	q := h.rng.LogNormal(math.Log(model.StressDRAMQueueMeanNs), model.StressDRAMQueueSigma)
	if !lead {
		q *= 0.18
	}
	d := sim.FromNanos(q)
	if lead && h.rng.Bernoulli(model.StressSpikeProb) {
		spike := h.rng.Pareto(model.StressSpikeXmNs, model.StressSpikeAlpha)
		if spike > model.StressSpikeCapNs {
			spike = model.StressSpikeCapNs
		}
		d += sim.FromNanos(spike)
	}
	return d
}

// NetworkWrite models inbound DMA from the NIC covering [addr, addr+size).
// With stashing enabled the lines are allocated directly into the LLC
// (paper §VI-C: "traffic arriving from the network is stashed into the LLC
// and, eventually, written back to main memory"); otherwise the data goes
// to DRAM and any cached copies are invalidated for coherence.
func (h *Hierarchy) NetworkWrite(addr uint64, size int) {
	if size <= 0 {
		return
	}
	firstLine := h.line(addr)
	lastLine := h.line(addr + uint64(size) - 1)
	for line := firstLine; ; line++ {
		// Inbound DMA always invalidates stale copies in the inner levels.
		h.l2.invalidate(line)
		h.l3.invalidate(line)
		if h.cfg.Stash {
			h.llc.insert(line)
			h.stats.NetStashed++
		} else {
			h.llc.invalidate(line)
			h.stats.NetToDRAM++
		}
		if line == lastLine {
			break
		}
	}
}

// WarmLines preloads [addr, addr+size) into the whole hierarchy, modelling
// code or data that is hot from previous use (e.g. a loaded library's
// function body after its first invocations).
func (h *Hierarchy) WarmLines(addr uint64, size int) {
	if size <= 0 {
		return
	}
	firstLine := h.line(addr)
	lastLine := h.line(addr + uint64(size) - 1)
	for line := firstLine; ; line++ {
		h.fill(line)
		if line == lastLine {
			break
		}
	}
}

// Contains reports which level holds the line at addr: "L2", "L3", "LLC" or
// "DRAM". For tests and diagnostics; does not update recency or stats.
func (h *Hierarchy) Contains(addr uint64) string {
	line := h.line(addr)
	// Peek without recency updates by scanning tags directly.
	if peek(h.l2, line) {
		return "L2"
	}
	if peek(h.l3, line) {
		return "L3"
	}
	if peek(h.llc, line) {
		return "LLC"
	}
	return "DRAM"
}

func peek(c *cache, line uint64) bool {
	base := c.setFor(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			return true
		}
	}
	return false
}

// Reset clears all cache contents, prefetch streams and statistics.
func (h *Hierarchy) Reset() {
	h.l2.reset()
	h.l3.reset()
	h.llc.reset()
	h.streams = [model.PrefetchStreams]stream{}
	h.useCtr = 0
	h.stats = Stats{}
}
