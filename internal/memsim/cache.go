// Package memsim models the testbed memory system of the Two-Chains paper:
// a 1 MB per-core L2, a 1 MB per-cluster L3, an 8 MB shared LLC, and
// DDR4-2666 DRAM, with three features the evaluation depends on:
//
//   - LLC stashing: traffic arriving from the network can be written
//     directly into the last-level cache instead of DRAM (paper §VI-C);
//   - a stride prefetcher that hides DRAM latency for streaming reads,
//     which narrows the stash advantage at large message sizes (Fig. 9);
//   - a stress mode reproducing `stress-ng --class vm` interference for the
//     tail-latency experiments (Fig. 11/12).
//
// The model is functional about *placement* (real set-associative tag
// arrays with LRU replacement decide where each line lives) and analytic
// about *time* (per-line costs from internal/model).
package memsim

// A cache is a set-associative tag array with per-set LRU replacement.
// Only tags are modelled; data always lives in the node's address space.
type cache struct {
	sets  int
	ways  int
	tags  []uint64 // sets*ways entries; line address + 1 (0 = invalid)
	lru   []uint32 // per-entry last-use stamps
	stamp uint32
}

func newCache(sizeBytes, ways, lineSize int) *cache {
	lines := sizeBytes / lineSize
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	return &cache{
		sets: sets,
		ways: ways,
		tags: make([]uint64, sets*ways),
		lru:  make([]uint32, sets*ways),
	}
}

func (c *cache) setFor(line uint64) int { return int(line % uint64(c.sets)) }

// lookup reports whether line is present, updating recency on hit.
func (c *cache) lookup(line uint64) bool {
	base := c.setFor(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			c.stamp++
			c.lru[base+w] = c.stamp
			return true
		}
	}
	return false
}

// insert places line in the cache, evicting the LRU way if needed.
// It returns the evicted line address and whether an eviction happened.
func (c *cache) insert(line uint64) (evicted uint64, wasEvicted bool) {
	base := c.setFor(line) * c.ways
	c.stamp++
	// Already present: refresh.
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			c.lru[base+w] = c.stamp
			return 0, false
		}
	}
	// Free way.
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == 0 {
			c.tags[base+w] = line + 1
			c.lru[base+w] = c.stamp
			return 0, false
		}
	}
	// Evict LRU.
	victim := 0
	for w := 1; w < c.ways; w++ {
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	evicted = c.tags[base+victim] - 1
	c.tags[base+victim] = line + 1
	c.lru[base+victim] = c.stamp
	return evicted, true
}

// invalidate removes line if present, reporting whether it was there.
func (c *cache) invalidate(line uint64) bool {
	base := c.setFor(line) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == line+1 {
			c.tags[base+w] = 0
			return true
		}
	}
	return false
}

// reset clears all tags.
func (c *cache) reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.stamp = 0
}

// occupancy returns the number of valid lines (for tests).
func (c *cache) occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}
