package memsim

import (
	"testing"
	"testing/quick"

	"twochains/internal/model"
	"twochains/internal/sim"
)

func testConfig(stash, prefetch bool) Config {
	c := DefaultConfig()
	c.Stash = stash
	c.Prefetch = prefetch
	return c
}

func TestCacheLookupInsert(t *testing.T) {
	c := newCache(64*1024, 4, 64) // 1024 lines, 256 sets
	if c.lookup(100) {
		t.Fatal("empty cache hit")
	}
	c.insert(100)
	if !c.lookup(100) {
		t.Fatal("inserted line missing")
	}
	if !c.invalidate(100) {
		t.Fatal("invalidate missed")
	}
	if c.lookup(100) {
		t.Fatal("line present after invalidate")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4*64, 4, 64) // one set, 4 ways
	for line := uint64(0); line < 4; line++ {
		c.insert(line)
	}
	// Touch 0 so 1 becomes LRU.
	c.lookup(0)
	evicted, was := c.insert(99)
	if !was || evicted != 1 {
		t.Fatalf("evicted %d (%v), want 1", evicted, was)
	}
	if !c.lookup(0) || !c.lookup(99) || c.lookup(1) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestCacheReinsertIsRefresh(t *testing.T) {
	c := newCache(4*64, 4, 64)
	for line := uint64(0); line < 4; line++ {
		c.insert(line)
	}
	if _, was := c.insert(2); was {
		t.Fatal("reinsert evicted")
	}
	if c.occupancy() != 4 {
		t.Fatalf("occupancy = %d", c.occupancy())
	}
}

func TestCacheOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(lines []uint16) bool {
		c := newCache(8*64, 2, 64) // 8 lines, 2-way, 4 sets
		for _, l := range lines {
			c.insert(uint64(l))
		}
		return c.occupancy() <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCacheInsertThenLookup(t *testing.T) {
	// Property: immediately after insert, lookup hits.
	f := func(lines []uint32) bool {
		c := newCache(64*1024, 8, 64)
		for _, l := range lines {
			c.insert(uint64(l))
			if !c.lookup(uint64(l)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := New(testConfig(false, false))
	cold := h.Access(0x1000, 8, Read)
	if cold < model.DRAMLat {
		t.Fatalf("cold access %v cheaper than DRAM %v", cold, model.DRAMLat)
	}
	warm := h.Access(0x1000, 8, Read)
	if warm != model.L2HitLat {
		t.Fatalf("warm access %v, want L2 hit %v", warm, model.L2HitLat)
	}
}

func TestStashPlacesLinesInLLC(t *testing.T) {
	h := New(testConfig(true, false))
	h.NetworkWrite(0x2000, 256)
	for off := uint64(0); off < 256; off += 64 {
		if lvl := h.Contains(0x2000 + off); lvl != "LLC" {
			t.Fatalf("line at +%d in %s, want LLC", off, lvl)
		}
	}
	st := h.Stats()
	if st.NetStashed != 4 {
		t.Fatalf("NetStashed = %d, want 4", st.NetStashed)
	}
}

func TestNoStashGoesToDRAM(t *testing.T) {
	h := New(testConfig(false, false))
	// Pre-warm the line, then simulate inbound DMA: copies must be
	// invalidated so the handler pays a DRAM access.
	h.WarmLines(0x3000, 64)
	h.NetworkWrite(0x3000, 64)
	if lvl := h.Contains(0x3000); lvl != "DRAM" {
		t.Fatalf("line in %s after non-stash DMA, want DRAM", lvl)
	}
	cost := h.Access(0x3000, 8, Read)
	if cost < model.DRAMLat {
		t.Fatalf("post-DMA read %v, want >= DRAM %v", cost, model.DRAMLat)
	}
}

func TestStashBeatsDRAMForHandlerRead(t *testing.T) {
	// The central claim of Fig. 9: reading a just-arrived frame is cheaper
	// when it was stashed.
	frame := 1472
	stash := New(testConfig(true, false))
	nonstash := New(testConfig(false, false))
	stash.NetworkWrite(0x8000, frame)
	nonstash.NetworkWrite(0x8000, frame)
	cs := stash.Access(0x8000, frame, Read)
	cn := nonstash.Access(0x8000, frame, Read)
	if cs >= cn {
		t.Fatalf("stash read %v not cheaper than non-stash %v", cs, cn)
	}
	ratio := float64(cn) / float64(cs)
	if ratio < 1.5 {
		t.Fatalf("stash advantage ratio %.2f too small for a 23-line frame", ratio)
	}
}

func TestPrefetcherNarrowsGap(t *testing.T) {
	// Fig. 9's second effect: once messages are large enough to trigger the
	// prefetcher, the stash advantage narrows.
	small, large := 256, 32768
	gap := func(size int) float64 {
		stash := New(testConfig(true, true))
		nonstash := New(testConfig(false, true))
		stash.NetworkWrite(0x10000, size)
		nonstash.NetworkWrite(0x10000, size)
		cs := stash.Access(0x10000, size, Read)
		cn := nonstash.Access(0x10000, size, Read)
		return (float64(cn) - float64(cs)) / float64(cn)
	}
	gs, gl := gap(small), gap(large)
	if gs <= gl {
		t.Fatalf("relative stash gap small=%.3f should exceed large=%.3f", gs, gl)
	}
	if gl > 0.35 {
		t.Fatalf("large-message gap %.3f; prefetcher should have narrowed it", gl)
	}
}

func TestPrefetcherTrainsOnSequentialMisses(t *testing.T) {
	h := New(testConfig(false, true))
	// Stream through 64 lines; after training, lines should be "prefetched".
	h.Access(0x100000, 64*64, Read)
	st := h.Stats()
	if st.LinesPref == 0 {
		t.Fatal("no prefetch-covered lines on a 64-line stream")
	}
	if st.LinesPref < 50 {
		t.Fatalf("LinesPref = %d, want most of the 64-line stream", st.LinesPref)
	}
}

func TestPrefetcherOffMeansNoPrefLines(t *testing.T) {
	h := New(testConfig(false, false))
	h.Access(0x100000, 64*64, Read)
	if st := h.Stats(); st.LinesPref != 0 {
		t.Fatalf("LinesPref = %d with prefetcher off", st.LinesPref)
	}
}

func TestStressAddsDelayAndTail(t *testing.T) {
	quiet := New(testConfig(false, false))
	loaded := New(testConfig(false, false))
	loaded.SetStress(true)
	const n = 4000
	var qSum, lSum sim.Duration
	var lMax sim.Duration
	for i := 0; i < n; i++ {
		addr := uint64(0x40000 + i*4096) // distinct pages: always DRAM
		qSum += quiet.Access(addr, 64, Read)
		d := loaded.Access(addr, 64, Read)
		lSum += d
		if d > lMax {
			lMax = d
		}
	}
	if lSum <= qSum {
		t.Fatal("stress did not increase mean DRAM cost")
	}
	// Heavy tail: the max under load should far exceed the quiet mean.
	if float64(lMax) < 5*float64(qSum)/n {
		t.Fatalf("no heavy tail: max %v vs quiet mean %v", lMax, sim.Duration(int64(qSum)/n))
	}
}

func TestStressCanEvictStashedLines(t *testing.T) {
	h := New(testConfig(true, false))
	h.SetStress(true)
	evictions := 0
	for i := 0; i < 2000; i++ {
		addr := uint64(0x200000 + i*64)
		h.NetworkWrite(addr, 64)
		h.Access(addr, 8, Read)
	}
	evictions = int(h.Stats().StressEvict)
	if evictions == 0 {
		t.Fatal("stress never evicted a stashed line in 2000 trials")
	}
	// Expect roughly StressLLCEvictProb of reads to be affected.
	frac := float64(evictions) / 2000
	if frac < 0.005 || frac > 0.15 {
		t.Fatalf("eviction fraction %.4f implausible", frac)
	}
}

func TestWarmLinesMakesL2Hits(t *testing.T) {
	h := New(testConfig(false, false))
	h.WarmLines(0x7000, 1408)
	cost := h.Access(0x7000, 1408, Fetch)
	// 22 lines, first at L2 latency, rest pipelined at ~1 cycle.
	expectMax := model.L2HitLat + 30*model.Cycles(1)
	if cost > expectMax {
		t.Fatalf("warm fetch cost %v, want <= %v", cost, expectMax)
	}
}

func TestAccessZeroSize(t *testing.T) {
	h := New(testConfig(true, true))
	if d := h.Access(0x1000, 0, Read); d != 0 {
		t.Fatalf("zero-size access cost %v", d)
	}
}

func TestResetClearsState(t *testing.T) {
	h := New(testConfig(true, true))
	h.NetworkWrite(0x9000, 512)
	h.Access(0x9000, 512, Read)
	h.Reset()
	if h.Stats().Accesses != 0 {
		t.Fatal("stats not cleared")
	}
	if lvl := h.Contains(0x9000); lvl != "DRAM" {
		t.Fatalf("line still in %s after reset", lvl)
	}
}

func TestDeterministicUnderSameSeed(t *testing.T) {
	run := func() sim.Duration {
		h := New(testConfig(false, false))
		h.SetStress(true)
		var sum sim.Duration
		for i := 0; i < 500; i++ {
			sum += h.Access(uint64(0x80000+i*4096), 64, Read)
		}
		return sum
	}
	if run() != run() {
		t.Fatal("same seed produced different totals")
	}
}

func TestInclusionProperty(t *testing.T) {
	// After a CPU read fill, the line is present at every level (inclusive
	// hierarchy): evicting nothing, a subsequent L2 invalidate must still
	// find it in L3/LLC.
	h := New(testConfig(false, false))
	h.Access(0xA000, 8, Read)
	h.l2.invalidate(h.line(0xA000))
	if lvl := h.Contains(0xA000); lvl != "L3" {
		t.Fatalf("line in %s, want L3 after L2 invalidate", lvl)
	}
}

func TestMultiLineLeadCostDominates(t *testing.T) {
	// Property: cost of reading k cold lines in one access is far less than
	// k independent cold accesses (pipelining), but more than one line.
	h := New(testConfig(false, false))
	one := h.Access(0xB0000, 64, Read)
	h2 := New(testConfig(false, false))
	eight := h2.Access(0xC0000, 512, Read)
	if eight <= one {
		t.Fatal("8-line access not costlier than 1-line")
	}
	if eight >= 8*one {
		t.Fatalf("no overlap: 8 lines cost %v vs 8x one-line %v", eight, 8*one)
	}
}
